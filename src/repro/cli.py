"""Command-line interface for the library.

Subcommands mirror the deployment workflow:

* ``privatize`` — randomize a file of private values into a JSONL report
  file (the client side; run it where the data lives);
* ``aggregate`` — reconstruct the distribution from a report file (the
  server side);
* ``estimate`` — both halves at once, for simulations;
* ``audit`` — numerically verify a mechanism's LDP guarantee;
* ``plan`` — back-of-envelope population sizing for a target accuracy;
* ``analyze`` — run a declarative analysis plan (``repro.tasks``) over a
  CSV of raw per-user values and write typed task results as JSON;
* ``pack`` / ``unpack`` / ``collect`` — the protocol-v2 serving workflow:
  randomize values into a wire feed for *any* registered mechanism
  (``--format jsonl|frame``), convert/inspect feeds, and run the
  mechanism-agnostic collection server over one or more shard feeds;
* ``serve`` / ``loadgen`` — the deployment tier (``repro.service``): run
  the sharded async HTTP collection service for a plan, and drive a
  running service with synthetic clients while measuring ingest
  latency/throughput.

Examples::

    python -m repro privatize --epsilon 1.0 --round-id r1 \
        --input values.txt --output reports.jsonl --seed 7
    python -m repro aggregate --epsilon 1.0 --round-id r1 --d 256 \
        --input reports.jsonl --output histogram.csv
    python -m repro estimate --epsilon 1.0 --d 256 --method sw-ems \
        --input values.txt --output histogram.csv
    python -m repro audit --shape square --epsilon 1.0
    python -m repro plan --epsilon 1.0 --target-std 0.002
    python -m repro analyze --plan plan.json --input survey.csv \
        --output results.json --seed 7
    python -m repro pack --method olh --epsilon 1.0 --d 64 --round-id r1 \
        --format frame --input values.txt --output feed.rpf --seed 7
    python -m repro unpack --input feed.rpf --format jsonl --output feed.jsonl
    python -m repro collect --method olh --epsilon 1.0 --d 64 --round-id r1 \
        --input feed.rpf --output frequencies.csv
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro import io
from repro.analysis.theory import olh_variance, required_population
from repro.core.waves import ALL_WAVE_SHAPES, make_wave
from repro.privacy.audit import audit_continuous_mechanism

__all__ = ["main"]


def _cmd_privatize(args) -> int:
    from repro.protocol.client import SWClient

    values = io.read_values(args.input)
    client = SWClient(args.round_id, epsilon=args.epsilon, b=args.b)
    payload = client.report_batch(values, rng=np.random.default_rng(args.seed))
    with open(args.output, "w") as handle:
        handle.write(payload + "\n")
    print(f"wrote {values.size} reports to {args.output}")
    return 0


def _cmd_aggregate(args) -> int:
    from repro.protocol.server import CollectionServer

    server = CollectionServer(
        args.round_id, f"sw-{args.postprocess}", args.epsilon, args.d, b=args.b,
    )
    with open(args.input) as handle:
        count = server.ingest_lines(handle.read())
    histogram = server.estimate()
    io.write_histogram_csv(histogram, args.output)
    print(
        f"aggregated {count} reports; EMS/EM ran "
        f"{server.estimator.result_.iterations} iterations; wrote {args.output}"
    )
    return 0


def _print_method_table() -> None:
    from repro.api.registry import list_estimators

    specs = list_estimators()
    name_w = max(len(s.name) for s in specs)
    kind_w = max(len(s.kind) for s in specs)
    header = (
        f"{'method':<{name_w}}  {'kind':<{kind_w}}  stream  merge  description"
    )
    print(header)
    print("-" * len(header))
    for spec in specs:
        print(
            f"{spec.name:<{name_w}}  {spec.kind:<{kind_w}}  "
            f"{'yes' if spec.streaming else 'no ':<6}  "
            f"{'yes' if spec.mergeable else 'no ':<5}  {spec.description}"
        )


def _cmd_estimate(args) -> int:
    from repro.api.registry import get_spec, make_estimator

    if args.list_methods:
        _print_method_table()
        return 0
    missing = [
        flag
        for flag, value in (
            ("--epsilon", args.epsilon),
            ("--input", args.input),
            ("--output", args.output),
        )
        if value is None
    ]
    if missing:
        print(
            f"error: {', '.join(missing)} required (or use --list-methods)",
            file=sys.stderr,
        )
        return 2

    spec = get_spec(args.method)
    if spec.kind == "marginals":
        print(
            f"error: {args.method} needs an (n, k) value matrix; "
            "use the repro.MultiAttributeSW API directly",
            file=sys.stderr,
        )
        return 2
    values = io.read_values(args.input)
    estimator = make_estimator(args.method, args.epsilon, args.d)
    rng = np.random.default_rng(args.seed)

    if spec.kind == "scalar":
        mean = estimator.fit(values, rng=rng)
        with open(args.output, "w") as handle:
            handle.write(f"statistic,value\nmean,{mean:.10g}\n")
        print(f"estimated mean {mean:.6f} with {args.method}; wrote {args.output}")
        return 0

    if spec.kind == "frequency":
        from repro.utils.histograms import bucketize

        histogram = estimator.fit(bucketize(values, args.d), rng=rng)
    else:
        histogram = estimator.fit(values, rng=rng)
    io.write_histogram_csv(histogram, args.output)
    # Leaf-signed and frequency estimates are unbiased but can carry
    # negative mass — say so instead of calling them histograms.
    what = {
        "distribution": f"{args.d}-bucket histogram",
        "leaf-signed": f"{args.d}-bucket signed leaf estimate (may contain negatives)",
        "frequency": f"{args.d}-bucket signed frequency estimate (may contain negatives)",
    }[spec.kind]
    print(f"estimated {what} with {args.method}; wrote {args.output}")
    return 0


def _cmd_audit(args) -> int:
    mechanism = make_wave(args.shape, args.epsilon, b=args.b)
    result = audit_continuous_mechanism(mechanism)
    status = "OK" if result.satisfied else "VIOLATION"
    print(
        f"shape={args.shape} epsilon={args.epsilon}: max probability ratio "
        f"{result.max_ratio:.6f} (effective epsilon {result.effective_epsilon:.6f}) "
        f"-> {status}"
    )
    return 0 if result.satisfied else 1


def _cmd_analyze(args) -> int:
    from repro.tasks import Session, load_plan, plan_analysis

    plan = load_plan(args.plan)
    planned = plan_analysis(plan)
    if args.explain:
        print(planned.describe())
        return 0
    missing = [
        flag
        for flag, value in (("--input", args.input), ("--output", args.output))
        if value is None
    ]
    if missing:
        print(
            f"error: {', '.join(missing)} required (or use --explain)",
            file=sys.stderr,
        )
        return 2
    data = io.read_table(args.input)
    rng = np.random.default_rng(args.seed)
    session = Session.fit_sharded(
        plan, data, shards=args.shards, rng=rng, planned=planned
    )
    report = session.results(
        confidence=args.confidence, n_bootstrap=args.bootstrap, rng=rng
    )
    with open(args.output, "w") as handle:
        handle.write(report.to_json() + "\n")
    audit = session.audit()
    print(planned.describe())
    print(
        f"answered {len(report)} tasks over "
        f"{sum(session.n_reports.values())} reports "
        f"(budget {'OK' if audit.satisfied else 'VIOLATION'}); wrote {args.output}"
    )
    return 0 if audit.satisfied else 1


def _read_feed(path: str) -> bytes | str:
    """Read a wire feed, auto-detecting binary frames vs JSON lines."""
    from repro.protocol.frames import is_frame

    with open(path, "rb") as handle:
        data = handle.read()
    if is_frame(data):
        return data
    return data.decode("utf-8")


def _write_feed(feed: bytes | str, path: str) -> None:
    if isinstance(feed, bytes):
        with open(path, "wb") as handle:
            handle.write(feed)
    else:
        with open(path, "w") as handle:
            handle.write(feed + "\n")


def _reportable_values(spec, values, d: int):
    """Map unit-domain inputs onto what the mechanism's clients report."""
    if spec.kind == "marginals":
        raise ValueError(
            f"{spec.name} needs an (n, k) value matrix; "
            "use the repro.MultiAttributeSW API directly"
        )
    if spec.kind == "frequency":
        from repro.utils.histograms import bucketize

        return bucketize(values, d)
    return values


def _cmd_pack(args) -> int:
    from repro.api.registry import get_spec, make_estimator
    from repro.protocol.codecs import codec_for_estimator
    from repro.protocol.frames import encode_frame
    from repro.protocol.messages import encode_batch_v2

    spec = get_spec(args.method)
    values = _reportable_values(spec, io.read_values(args.input), args.d)
    estimator = make_estimator(args.method, args.epsilon, args.d)
    codec = codec_for_estimator(estimator)
    reports = estimator.privatize(values, rng=np.random.default_rng(args.seed))
    if args.format == "frame":
        feed: bytes | str = encode_frame(
            args.round_id, reports, codec, attr=args.attr
        )
    else:
        feed = encode_batch_v2(args.round_id, reports, codec, attr=args.attr)
    _write_feed(feed, args.output)
    print(
        f"packed {values.size} {args.method} reports ({codec.name} payloads, "
        f"{args.format}) to {args.output}"
    )
    return 0


def _cmd_unpack(args) -> int:
    from repro.protocol.frames import decode_any_feed, encode_frame_blocks
    from repro.protocol.messages import encode_batch_v2

    round_id, groups = decode_any_feed(_read_feed(args.input))
    for group in groups.values():
        print(
            f"round {round_id!r} attr {group.attr!r}: {group.n} reports "
            f"({group.mechanism} payloads)"
        )
    if args.output is None:
        return 0
    blocks = [(g.attr, g.mechanism, g.reports) for g in groups.values()]
    if args.format == "frame":
        out: bytes | str = encode_frame_blocks(round_id, blocks)
    else:
        out = "\n".join(
            encode_batch_v2(round_id, reports, mech, attr=attr)
            for attr, mech, reports in blocks
        )
    _write_feed(out, args.output)
    print(f"rewrote feed as {args.format} to {args.output}")
    return 0


def _cmd_collect(args) -> int:
    from repro.api.registry import get_spec
    from repro.protocol.server import CollectionServer

    spec = get_spec(args.method)
    if spec.kind == "marginals":
        print(
            f"error: {args.method} estimates per-attribute marginals; "
            "serve it through a PlanServer instead",
            file=sys.stderr,
        )
        return 2
    server = CollectionServer(
        args.round_id, args.method, args.epsilon, args.d, attr=args.attr
    )
    total = 0
    for path in args.input:
        total += server.ingest_feed(_read_feed(path))
    estimate = server.estimate()
    if spec.kind == "scalar":
        with open(args.output, "w") as handle:
            handle.write(f"statistic,value\nmean,{estimate:.10g}\n")
        what = f"mean {estimate:.6f}"
    else:
        io.write_histogram_csv(np.asarray(estimate), args.output)
        what = f"{np.asarray(estimate).size}-bucket estimate"
    print(
        f"collected {total} reports across {len(args.input)} feed(s); "
        f"{what} with {args.method}; wrote {args.output}"
    )
    return 0


def _cmd_plan(args) -> int:
    n = required_population(args.epsilon, args.target_std, d=args.d)
    print(
        f"target per-frequency std {args.target_std} at epsilon={args.epsilon} "
        f"needs ~{n:,} users (per-user variance {olh_variance(args.epsilon):.3f})"
    )
    return 0


def _service_config(args):
    from repro.service import ServiceConfig

    return ServiceConfig.from_plan_file(
        args.plan,
        n_shards=args.shards,
        queue_depth=args.queue_depth,
        backends=args.backend,
        window=args.window,
        decay=args.decay,
        host=args.host,
        port=args.port,
        journal_dir=getattr(args, "journal_dir", None),
        journal_fsync=getattr(args, "journal_fsync", "checkpoint"),
        checkpoint_every=getattr(args, "checkpoint_every", None)
        or _default_checkpoint_every(),
    )


def _default_checkpoint_every() -> int:
    from repro.service import DEFAULT_CHECKPOINT_EVERY

    return DEFAULT_CHECKPOINT_EVERY


def _cmd_serve(args) -> int:
    import asyncio

    from repro.service import serve

    config = _service_config(args)

    def ready(host: str, port: int) -> None:
        # Flushed so wrappers (CI smoke, examples) see the bound port
        # immediately even when stdout is a pipe.
        mode = ""
        if config.window is not None:
            mode = f", sliding window of {config.window} rounds"
        elif config.decay is not None:
            mode = f", decayed window (gamma={config.decay})"
        if config.journal_dir is not None:
            mode += f", journaling to {config.journal_dir}"
        print(
            f"serving plan {args.plan} on http://{host}:{port} "
            f"({config.n_shards} shards, queue depth {config.queue_depth}"
            f"{mode}); Ctrl-C to stop",
            flush=True,
        )

    try:
        asyncio.run(serve(config, ready=ready))
    except KeyboardInterrupt:
        print("stopped")
    return 0


def _cmd_recover(args) -> int:
    import json
    from pathlib import Path

    from repro.service import ServiceConfig, ShardedCollector

    journal_dir = Path(args.journal_dir)
    if not journal_dir.is_dir():
        raise ValueError(f"journal dir {journal_dir} does not exist")
    n_shards = args.shards
    if n_shards is None:
        n_shards = len(sorted(journal_dir.glob("shard-*.journal")))
        if n_shards == 0:
            raise ValueError(
                f"no shard-*.journal files under {journal_dir}; nothing to recover"
            )
    config = ServiceConfig.from_plan_file(
        args.plan,
        n_shards=n_shards,
        window=args.window,
        decay=args.decay,
        journal_dir=journal_dir,
    )
    with ShardedCollector(config) as collector:
        recovery = collector.stats()
        journal = recovery["journal"] or {}
        print(
            f"recovered {journal.get('recovered_records', 0)} journal records "
            f"across {n_shards} shards "
            f"({recovery['uploads_accepted']} uploads committed; "
            f"rounds: {', '.join(recovery['rounds']) or 'none'})",
            flush=True,
        )
        result: dict = {"stats": recovery}
        if args.round_id is not None:
            result["estimate"] = collector.estimate(args.round_id)
            reports = sum(result["estimate"]["n_reports"].values())
            print(f"round {args.round_id}: {reports:,} reports recovered")
        elif config.windowed and recovery["window_ticks"]:
            result["window"] = collector.window_estimate()
            print(
                f"window re-advanced through {recovery['window_ticks']} ticks "
                f"({', '.join(result['window']['rounds'])})"
            )
        if args.output is not None:
            with open(args.output, "w") as handle:
                json.dump(result, handle, indent=2)
                handle.write("\n")
            print(f"wrote {args.output}")
    return 0


def _cmd_stream(args) -> int:
    import json

    import numpy as np

    from repro.api import make_estimator
    from repro.privacy import audit_stream_budget
    from repro.streaming import (
        StreamingCollector,
        drifting_stream,
        shifting_mixture_stream,
    )

    streams = {
        "drift": drifting_stream,
        "mixture": shifting_mixture_stream,
    }
    collector = StreamingCollector(
        {"value": make_estimator(args.method, args.epsilon, args.d)},
        window=args.window,
        decay=args.decay,
        drift_every=args.drift_every,
        drift_threshold=args.drift_threshold,
    )
    rows = []
    values_stream = streams[args.stream](
        args.ticks, args.users, rng=np.random.default_rng(args.seed)
    )
    for index, values in enumerate(values_stream):
        round_estimator = collector.make_round(
            "value", values, rng=np.random.default_rng(args.seed + 1 + index)
        )
        result = collector.tick({"value": round_estimator})
        tick = result.attributes["value"]
        rows.append(result.to_dict())
        drift = "" if tick.drift is None else f" drift={tick.drift:.4f}"
        flag = " DRIFTED" if tick.drifted else ""
        print(
            f"tick {result.tick:3d}: iterations={tick.iterations} "
            f"warm={tick.warm}{drift}{flag}"
        )
    audit = audit_stream_budget(
        {"value": args.epsilon},
        args.epsilon,
        rounds=collector.effective_rounds,
    )
    print(
        f"per-window epsilon {audit.per_window_epsilon:.4g} over "
        f"{audit.rounds} effective rounds "
        f"(per-round {audit.per_round_epsilon:.4g})"
    )
    if args.output is not None:
        with open(args.output, "w") as handle:
            json.dump({"ticks": rows, "audit": audit.to_dict()}, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0


def _cmd_loadgen(args) -> int:
    import json

    from repro.tasks import load_plan

    from repro.service.loadgen import run_load

    plan = load_plan(args.plan)
    report = run_load(
        args.host,
        args.port,
        plan,
        args.round_id,
        args.users,
        batch_size=args.batch,
        concurrency=args.concurrency,
        rng=args.seed,
    )
    summary = report.to_dict()
    print(
        f"uploaded {summary['n_reports_accepted']:,} reports in "
        f"{summary['n_uploads']} frames over {summary['elapsed_seconds']}s "
        f"({summary['reports_per_second']:,.0f} reports/s; "
        f"p50 {summary['latency_ms']['p50']}ms, "
        f"p99 {summary['latency_ms']['p99']}ms, "
        f"{summary['n_throttled']} throttled)"
    )
    if args.output is not None:
        with open(args.output, "w") as handle:
            json.dump(summary, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.output}")
    return 0 if summary["n_errors"] == 0 else 1


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Numerical distribution estimation under local differential privacy",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("privatize", help="randomize values into LDP reports")
    p.add_argument("--epsilon", type=float, required=True)
    p.add_argument("--b", type=float, default=None)
    p.add_argument("--round-id", required=True)
    p.add_argument("--input", required=True, help="one value in [0,1] per line")
    p.add_argument("--output", required=True, help="JSONL report file")
    p.add_argument("--seed", type=int, default=None)
    p.set_defaults(fn=_cmd_privatize)

    p = sub.add_parser("aggregate", help="reconstruct a distribution from reports")
    p.add_argument("--epsilon", type=float, required=True)
    p.add_argument("--b", type=float, default=None)
    p.add_argument("--round-id", required=True)
    p.add_argument("--d", type=int, default=1024)
    p.add_argument("--postprocess", choices=("ems", "em"), default="ems")
    p.add_argument("--input", required=True, help="JSONL report file")
    p.add_argument("--output", required=True, help="histogram CSV")
    p.set_defaults(fn=_cmd_aggregate)

    p = sub.add_parser("estimate", help="privatize + aggregate in one step")
    p.add_argument("--epsilon", type=float, default=None)
    p.add_argument("--d", type=int, default=1024)
    p.add_argument(
        "--method",
        default="sw-ems",
        help="any registered estimator (see --list-methods)",
    )
    p.add_argument("--input", default=None)
    p.add_argument("--output", default=None)
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--list-methods",
        action="store_true",
        help="print the estimator registry table and exit",
    )
    p.set_defaults(fn=_cmd_estimate)

    p = sub.add_parser("audit", help="numerically audit a wave mechanism's LDP")
    p.add_argument("--shape", choices=ALL_WAVE_SHAPES, default="square")
    p.add_argument("--epsilon", type=float, required=True)
    p.add_argument("--b", type=float, default=None)
    p.set_defaults(fn=_cmd_audit)

    p = sub.add_parser(
        "analyze", help="run a declarative analysis plan over a CSV of raw values"
    )
    p.add_argument("--plan", required=True, help="plan file (.json or .toml)")
    p.add_argument("--input", default=None, help="CSV with one column per attribute")
    p.add_argument("--output", default=None, help="results JSON")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument(
        "--shards", type=int, default=1,
        help="simulate N shard servers that merge before answering",
    )
    p.add_argument(
        "--confidence", type=float, default=None,
        help="bootstrap CI coverage, e.g. 0.9 (off by default)",
    )
    p.add_argument("--bootstrap", type=int, default=100, help="bootstrap resamples")
    p.add_argument(
        "--explain", action="store_true",
        help="print the planner's mechanism/budget choices and exit",
    )
    p.set_defaults(fn=_cmd_analyze)

    p = sub.add_parser(
        "pack", help="randomize values into a protocol-v2 wire feed"
    )
    p.add_argument("--method", default="sw-ems", help="any registered estimator")
    p.add_argument("--epsilon", type=float, required=True)
    p.add_argument("--d", type=int, default=1024)
    p.add_argument("--round-id", required=True)
    p.add_argument("--attr", default="value", help="attribute id to stamp reports with")
    p.add_argument(
        "--format", choices=("jsonl", "frame"), default="frame",
        help="wire transport: columnar binary frame or envelope JSON lines",
    )
    p.add_argument("--input", required=True, help="one value in [0,1] per line")
    p.add_argument("--output", required=True, help="feed file")
    p.add_argument("--seed", type=int, default=None)
    p.set_defaults(fn=_cmd_pack)

    p = sub.add_parser(
        "unpack", help="inspect a wire feed and optionally convert its format"
    )
    p.add_argument("--input", required=True, help="feed file (frame or JSON lines)")
    p.add_argument("--output", default=None, help="converted feed (omit to inspect only)")
    p.add_argument(
        "--format", choices=("jsonl", "frame"), default="jsonl",
        help="output transport when --output is given",
    )
    p.set_defaults(fn=_cmd_unpack)

    p = sub.add_parser(
        "collect", help="aggregate wire feeds with the mechanism-agnostic server"
    )
    p.add_argument("--method", default="sw-ems", help="any registered estimator")
    p.add_argument("--epsilon", type=float, required=True)
    p.add_argument("--d", type=int, default=1024)
    p.add_argument("--round-id", required=True)
    p.add_argument("--attr", default="value")
    p.add_argument(
        "--input", required=True, nargs="+",
        help="one or more shard feed files (frame or JSON lines, auto-detected)",
    )
    p.add_argument("--output", required=True, help="estimate CSV")
    p.set_defaults(fn=_cmd_collect)

    p = sub.add_parser("plan", help="population sizing for a target accuracy")
    p.add_argument("--epsilon", type=float, required=True)
    p.add_argument("--target-std", type=float, required=True)
    p.add_argument("--d", type=int, default=None)
    p.set_defaults(fn=_cmd_plan)

    p = sub.add_parser(
        "serve", help="run the sharded async collection service over HTTP"
    )
    p.add_argument("--plan", required=True, help="plan file (.json or .toml)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8350, help="0 picks a free port")
    p.add_argument("--shards", type=int, default=2, help="shard aggregators")
    p.add_argument(
        "--queue-depth", type=int, default=64,
        help="per-shard pending-block bound (backpressure threshold)",
    )
    p.add_argument(
        "--backend", default=None,
        help="compute backend spec for shard solves, e.g. threaded:4",
    )
    p.add_argument(
        "--window", type=int, default=None,
        help="continuous mode: sliding window of the last N advanced rounds",
    )
    p.add_argument(
        "--decay", type=float, default=None,
        help="continuous mode: exponential forgetting factor in (0, 1)",
    )
    p.add_argument(
        "--journal-dir", default=None,
        help="durable ingest journal directory (enables crash recovery)",
    )
    p.add_argument(
        "--journal-fsync", choices=("always", "checkpoint", "never"),
        default="checkpoint", help="when journal appends reach disk",
    )
    p.add_argument(
        "--checkpoint-every", type=int, default=None,
        help="accepted uploads between state checkpoints (default 256)",
    )
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "recover",
        help="rebuild service state from a crashed deployment's journals",
    )
    p.add_argument("--plan", required=True, help="the crashed service's plan file")
    p.add_argument("--journal-dir", required=True, help="its journal directory")
    p.add_argument(
        "--shards", type=int, default=None,
        help="shard count (default: inferred from shard-*.journal files)",
    )
    p.add_argument(
        "--window", type=int, default=None,
        help="sliding-window length, when the deployment was windowed",
    )
    p.add_argument(
        "--decay", type=float, default=None,
        help="decay factor, when the deployment used decayed windows",
    )
    p.add_argument(
        "--round-id", default=None,
        help="also estimate this round from the recovered state",
    )
    p.add_argument("--output", default=None, help="write recovery JSON here")
    p.set_defaults(fn=_cmd_recover)

    p = sub.add_parser(
        "stream",
        help="simulate continuous collection over a drifting synthetic stream",
    )
    p.add_argument("--method", default="sw-ems", help="registry estimator name")
    p.add_argument("--epsilon", type=float, default=1.0)
    p.add_argument("--d", type=int, default=256, help="histogram granularity")
    p.add_argument("--ticks", type=int, default=20, help="rounds to simulate")
    p.add_argument("--users", type=int, default=20_000, help="users per round")
    p.add_argument(
        "--window", type=int, default=None,
        help="sliding window length (default: cumulative)",
    )
    p.add_argument(
        "--decay", type=float, default=None,
        help="exponential forgetting factor in (0, 1)",
    )
    p.add_argument(
        "--stream", choices=("drift", "mixture"), default="drift",
        help="synthetic stream shape (drifting mode or shifting mixture)",
    )
    p.add_argument("--drift-every", type=int, default=5, help="0 disables checks")
    p.add_argument("--drift-threshold", type=float, default=0.05)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--output", default=None, help="write per-tick JSON here")
    p.set_defaults(fn=_cmd_stream)

    p = sub.add_parser(
        "loadgen", help="drive a running service with synthetic clients"
    )
    p.add_argument("--plan", required=True, help="plan file (must match the server's)")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, required=True)
    p.add_argument("--round-id", default="load-1")
    p.add_argument("--users", type=int, default=100_000)
    p.add_argument("--batch", type=int, default=10_000, help="users per frame")
    p.add_argument("--concurrency", type=int, default=8, help="uploader connections")
    p.add_argument("--seed", type=int, default=None)
    p.add_argument("--output", default=None, help="write the load report JSON here")
    p.set_defaults(fn=_cmd_loadgen)

    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.fn(args)
    except (ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
