"""Mechanism tour: every estimator in the library on one dataset, audited.

Walks through the full method zoo the paper evaluates — SW+EMS/EM, HH-ADMM,
HH, HaarHRR, CFO-with-binning, SR, PM — on the retirement dataset, reports
each method's metrics, and numerically audits the LDP guarantee of the
mechanisms' randomizers.

Run:  python examples/compare_mechanisms.py
"""

import numpy as np

from repro import (
    CFOBinning,
    HHADMM,
    HaarHRR,
    HierarchicalHistogram,
    SWEstimator,
    estimate_mean_unit,
    ks_distance,
    range_query_mae,
    wasserstein_distance,
)
from repro.core import DiscreteSquareWave, GeneralWave, SquareWave
from repro.datasets import retirement_dataset
from repro.privacy import audit_continuous_mechanism, audit_matrix
from repro.utils.histograms import histogram_mean

EPSILON = 1.0
D = 1024


def main() -> None:
    print(f"Dataset: retirement contributions (zero-inflated, right-skewed)")
    ds = retirement_dataset(n=178_012, rng=5)  # the paper's sample size
    truth = ds.histogram(D)
    true_mean = histogram_mean(truth)

    print(f"\n--- Distribution estimators (epsilon = {EPSILON}) ---")
    print(f"{'method':<14}{'W1':>10}{'KS':>10}{'range MAE':>11}{'|mean err|':>11}")
    methods = {
        "sw-ems": SWEstimator(EPSILON, D, postprocess="ems"),
        "sw-em": SWEstimator(EPSILON, D, postprocess="em"),
        "hh-admm": HHADMM(EPSILON, D, branching=4),
        "cfo-32": CFOBinning(EPSILON, D, bins=32),
    }
    for i, (name, method) in enumerate(methods.items()):
        est = method.fit(ds.values, rng=np.random.default_rng(i))
        print(
            f"{name:<14}"
            f"{wasserstein_distance(truth, est):>10.5f}"
            f"{ks_distance(truth, est):>10.5f}"
            f"{range_query_mae(truth, est, 0.1, rng=42):>11.5f}"
            f"{abs(histogram_mean(est) - true_mean):>11.5f}"
        )

    print("\n--- Range-query-only estimators (signed estimates) ---")
    print(f"{'method':<14}{'range MAE (alpha=0.1)':>22}")
    for i, (name, method) in enumerate(
        {
            "hh": HierarchicalHistogram(EPSILON, D, branching=4),
            "haar-hrr": HaarHRR(EPSILON, D),
        }.items()
    ):
        est = method.fit(ds.values, rng=np.random.default_rng(10 + i))
        print(f"{name:<14}{range_query_mae(truth, est, 0.1, rng=42):>22.5f}")

    print("\n--- Mean-only estimators ---")
    print(f"{'method':<14}{'|mean err|':>11}   (true mean {true_mean:.5f})")
    for name in ("sr", "pm"):
        est = estimate_mean_unit(ds.values, EPSILON, name, rng=np.random.default_rng(20))
        print(f"{name:<14}{abs(est - true_mean):>11.5f}")

    print("\n--- Numerical LDP audits (max observed probability ratio) ---")
    sw = SquareWave(EPSILON)
    gw = GeneralWave(EPSILON, ratio=0.5)
    dsw = DiscreteSquareWave(EPSILON, 64)
    for name, result in (
        ("square wave", audit_continuous_mechanism(sw)),
        ("trapezoid wave", audit_continuous_mechanism(gw)),
        ("discrete SW", audit_matrix(dsw.transition_matrix(), EPSILON)),
    ):
        status = "OK" if result.satisfied else "VIOLATION"
        print(
            f"{name:<16} effective epsilon = {result.effective_epsilon:.6f} "
            f"(budget {EPSILON}) -> {status}"
        )


if __name__ == "__main__":
    main()
