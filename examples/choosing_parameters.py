"""Choosing deployment parameters: epsilon, bandwidth, granularity, and n.

Before launching a collection you must pick the privacy budget, the wave
bandwidth, the histogram granularity, and decide whether your population is
large enough. This example walks the library's analysis tools through those
decisions, then validates the chosen configuration with bootstrap
confidence bands and reports the uncertainty per bucket.

Run:  python examples/choosing_parameters.py
"""

import numpy as np

from repro import (
    SWEstimator,
    estimator_confidence_bands,
    optimal_bandwidth,
    required_population,
    sw_exact_mutual_information,
    wasserstein_distance,
)
from repro.analysis import grr_variance, olh_variance, oracle_crossover_domain
from repro.core.bandwidth import mutual_information_bound
from repro.datasets import retirement_dataset


def main() -> None:
    print("=== Step 1: what does each epsilon buy? ===")
    print(f"{'epsilon':<9}{'b*':>8}{'MI bound (nats)':>17}{'users for std 0.005':>21}")
    for eps in (0.5, 1.0, 2.0, 4.0):
        b = optimal_bandwidth(eps)
        mi = mutual_information_bound(eps, b)
        n = required_population(eps, target_std=0.005)
        print(f"{eps:<9}{b:>8.3f}{mi:>17.4f}{n:>21,}")

    print("\n=== Step 2: frequency-oracle crossover (for hierarchy levels) ===")
    for eps in (0.5, 1.0, 2.0):
        d_cross = oracle_crossover_domain(eps)
        print(
            f"eps={eps}: GRR wins below d={d_cross} "
            f"(GRR var at d=4: {grr_variance(eps, 4):.2f}, "
            f"OLH var: {olh_variance(eps):.2f})"
        )

    print("\n=== Step 3: exact mutual information on a pilot distribution ===")
    ds = retirement_dataset(n=178_012, rng=5)
    pilot = ds.histogram(256)
    eps = 1.0
    for b in (0.1, optimal_bandwidth(eps), 0.4):
        est = SWEstimator(eps, d=256, b=b)
        mi = sw_exact_mutual_information(est.transition_matrix, pilot)
        marker = "  <- b*" if abs(b - optimal_bandwidth(eps)) < 1e-9 else ""
        print(f"b={b:.3f}: I(V; V~) = {mi:.4f} nats{marker}")

    print("\n=== Step 4: validate with bootstrap confidence bands ===")
    estimator = SWEstimator(eps, d=256)
    bands = estimator_confidence_bands(
        estimator, ds.values, coverage=0.9, n_bootstrap=30, rng=0
    )
    truth = ds.histogram(256)
    print(f"point-estimate W1 vs truth: {wasserstein_distance(truth, bands.point):.5f}")
    print(f"mean 90% band width per bucket: {bands.width.mean():.5f}")
    widest = int(np.argmax(bands.width))
    print(
        f"widest bucket: #{widest} ([{widest / 256:.3f}, {(widest + 1) / 256:.3f}]), "
        f"mass {bands.point[widest]:.4f} +- {bands.width[widest] / 2:.4f}"
    )
    print(
        "\nReading: if the band widths are too wide for your use case, "
        "raise epsilon or collect more users (step 1 quantifies both)."
    )


if __name__ == "__main__":
    main()
