"""Continuous collection: windowed rounds, warm-start ticks, drift flags.

Scenario: the one-shot survey from the other examples becomes a monitor —
a new round of ~20k privatized reports lands every tick, and the
aggregator publishes a fresh estimate over the last 6 rounds. The
:class:`repro.streaming.StreamingCollector` keeps that cheap three ways:

* the sliding window advances in O(d) (add newest round, subtract the
  evicted one through the sanctioned state arithmetic) — bit-identical
  to re-ingesting the surviving rounds from scratch;
* EM warm-starts each tick from the previous posterior, so a window that
  moved by one round converges in a fraction of the cold iterations;
* a tick whose window did not change is served from the posterior cache
  without any solve at all (fingerprint skip).

The stream drifts on purpose: a mixture whose mass migrates between two
modes, with the drift monitor cross-checking warm posteriors on a
cadence. The final audit reports the per-window effective epsilon a
single every-round participant spends.

Run:  python examples/streaming_round.py
"""

import numpy as np

from repro.api import make_estimator
from repro.streaming import StreamingCollector, shifting_mixture_stream

EPSILON = 1.0
D = 128
WINDOW = 6
ROUNDS = 12
REPORTS_PER_ROUND = 20_000


def main() -> None:
    collector = StreamingCollector(
        {"income": make_estimator("sw-ems", EPSILON, D)},
        window=WINDOW,
        drift_every=3,  # cross-check the warm posterior every 3rd tick
    )

    print(f"window of {WINDOW} rounds, {REPORTS_PER_ROUND:,} reports/round")
    total_iterations = 0
    for i, values in enumerate(
        shifting_mixture_stream(ROUNDS, REPORTS_PER_ROUND, rng=7)
    ):
        rounds = {
            "income": collector.make_round(
                "income", values, rng=np.random.default_rng(i)
            )
        }
        result = collector.tick(rounds)
        tick = result.attributes["income"]
        truth = np.histogram(values, bins=D, range=(0.0, 1.0))[0]
        mode_err = abs(
            int(np.argmax(tick.estimate)) - int(np.argmax(truth))
        ) / D
        total_iterations += result.total_iterations
        flags = "warm" if tick.warm else "cold"
        if tick.drift is not None:
            flags += f", drift={tick.drift:.4f}" + (
                " (invalidated)" if tick.drifted else ""
            )
        print(
            f"tick {result.tick:>2}: {tick.iterations:>3} EM iterations "
            f"({flags}), mode error {mode_err:.3f}"
        )

    # A tick with no new round: the window fingerprint is unchanged, so
    # the cached posterior is served without a solve.
    idle = collector.tick({})
    print(
        f"idle tick: solved={idle.solved}, skipped={idle.skipped} "
        "(fingerprint cache hit, zero solves)"
    )
    print(f"total EM iterations across the stream: {total_iterations}")

    # What does continuous participation cost? A user reporting every
    # round influences WINDOW rounds of the current estimate.
    audit = collector.audit({"income": EPSILON}, epsilon_budget=8.0)
    print(
        f"budget: {audit.per_round_epsilon:.1f} eps/round -> "
        f"{audit.per_window_epsilon:.1f} eps over the {audit.rounds}-round "
        f"window (budget 8.0, satisfied={audit.satisfied})"
    )


if __name__ == "__main__":
    main()
