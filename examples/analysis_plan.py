"""Task-oriented analysis: declare *what* to learn, not *how*.

Scenario: a survey collects two attributes per user — annual income
(continuous, [0, 250k]) and weekly work hours (continuous, [0, 80]) — under
one epsilon=1 per-user budget. The analyst wants the income mean and
deciles, plus the share of users in two work-hour bands. Instead of picking
mechanisms and splitting budget by hand, they write an AnalysisPlan; the
planner applies the paper's Section 8 guidance and the Session runs the
whole privatize -> ingest -> merge -> results pipeline.

Run:  python examples/analysis_plan.py
"""

import numpy as np

from repro.tasks import (
    AnalysisPlan,
    AttributeSpec,
    Mean,
    Quantiles,
    RangeQueries,
    Session,
    plan_analysis,
)


def main() -> None:
    rng = np.random.default_rng(0)

    # --- The declarative plan: attributes + tasks + one budget. -----------
    plan = AnalysisPlan(
        epsilon=1.0,
        attributes=(
            AttributeSpec("income", low=0.0, high=250_000.0, d=256),
            AttributeSpec("hours", low=0.0, high=80.0, d=64),
        ),
        tasks=(
            Mean("income"),
            Quantiles("income", quantiles=(0.1, 0.5, 0.9)),
            RangeQueries("hours", windows=((0.0, 20.0), (40.0, 60.0))),
        ),
    )

    # --- The planner's Section 8 choices, before any data moves. ----------
    planned = plan_analysis(plan)
    print(planned.describe())

    # --- The private data (never leaves the users in a real deployment). --
    n = 100_000
    data = {
        "income": rng.gamma(4.0, 12_000.0, n).clip(0.0, 250_000.0),
        "hours": rng.normal(41.0, 9.0, n).clip(0.0, 80.0),
    }

    # --- Two shard servers aggregate disjoint user populations... ---------
    shard_a = Session(plan).partial_fit(
        {k: v[: n // 2] for k, v in data.items()}, rng=rng
    )
    shard_b = Session(plan).partial_fit(
        {k: v[n // 2 :] for k, v in data.items()}, rng=rng
    )

    # --- ...and merge exactly before answering. ---------------------------
    report = shard_a.merge(shard_b).results(confidence=0.9, n_bootstrap=50, rng=rng)

    mean = report["mean:income"]
    print(f"\nIncome mean: {mean.value:,.0f} "
          f"(90% CI {mean.ci[0]:,.0f} .. {mean.ci[1]:,.0f}; true {data['income'].mean():,.0f})")

    deciles = report["quantiles:income"]
    for beta, est in zip(deciles.detail["quantiles"], deciles.value):
        true = float(np.quantile(data["income"], beta))
        print(f"Income q{beta:.0%}: {est:,.0f} (true {true:,.0f})")

    bands = report["range_queries:hours"]
    for (lo, hi), mass in zip(bands.detail["windows"], bands.value):
        true = float(((data["hours"] >= lo) & (data["hours"] <= hi)).mean())
        print(f"Hours in [{lo:.0f}, {hi:.0f}]: {mass:.1%} (true {true:.1%})")

    audit = shard_a.audit()
    print(f"\nBudget: per-user epsilon {audit.per_user_epsilon} of "
          f"{audit.epsilon_budget} ({audit.composition} composition) -> "
          f"{'OK' if audit.satisfied else 'VIOLATION'}")


if __name__ == "__main__":
    main()
