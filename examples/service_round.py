"""One collection round through the sharded HTTP service, end to end.

Scenario: an aggregator runs ``repro.service`` with four shard workers
behind its asyncio front end. A fleet of simulated devices privatizes
two attributes (income, age), packs RPF2 frames through the same
``Session`` client path a real deployment uses, and uploads them over
HTTP with the load harness. The aggregator then answers the whole
analysis plan from one ``/estimate`` call — and because every
``(round, attr)`` lives wholly on one shard, the sharded answer is
bit-identical to what a single server ingesting the same frames would
produce.

Run:  PYTHONPATH=src python examples/service_round.py
"""

import json

from repro.service import (
    ServiceConfig,
    ShardedCollector,
    run_load,
    start_local_service,
)
from repro.service.loadgen import synthesize_frames
from repro.tasks import (
    AnalysisPlan,
    AttributeSpec,
    Distribution,
    Mean,
    Quantiles,
)

ROUND = "survey-2026-08"
N_USERS = 200_000


def make_plan() -> AnalysisPlan:
    return AnalysisPlan(
        epsilon=2.0,
        attributes=(
            AttributeSpec(name="income", low=0.0, high=200_000.0),
            AttributeSpec(name="age", low=18.0, high=90.0),
        ),
        tasks=(
            Distribution(attribute="income"),
            Quantiles(attribute="income", quantiles=(0.25, 0.5, 0.75)),
            Mean(attribute="age"),
        ),
    )


def main() -> None:
    plan = make_plan()
    config = ServiceConfig(plan=plan, n_shards=4, queue_depth=32)

    # --- The service: asyncio HTTP front end + 4 shard aggregators. -------
    with start_local_service(config) as handle:
        print(f"service on http://{handle.host}:{handle.port} "
              f"({config.n_shards} shards)")

        # --- The fleet: vectorized clients uploading over HTTP. -----------
        load = run_load(
            handle.host, handle.port, plan, ROUND, N_USERS,
            batch_size=10_000, concurrency=8, rng=42,
        )
        print(f"uploaded {load.n_reports_accepted:,} reports in "
              f"{load.n_uploads} frames: "
              f"{load.reports_per_second:,.0f} reports/s, "
              f"p99 {load.to_dict()['latency_ms']['p99']:.1f} ms, "
              f"{load.n_throttled} throttled")

        # --- One estimate call merges shard snapshots and solves. ---------
        result = handle.collector.estimate(ROUND)
        report = result["report"]
        by_task = {r["task"] + ":" + r["attribute"]: r for r in report["results"]}
        q25, q50, q75 = by_task["quantiles:income"]["value"]
        print(f"income quartiles: {q25:,.0f} / {q50:,.0f} / {q75:,.0f}")
        print(f"mean age: {by_task['mean:age']['value']:.1f}")

        # --- Observability: what /statz serves over HTTP. -----------------
        stats = handle.collector.stats()
        per_shard = [s["reports_ingested"] for s in stats["shards"]]
        print(f"per-shard reports: {per_shard}, "
              f"merge took {stats['merge_ms_last']:.1f} ms")

    # --- The acceptance contract, demonstrated: shards are invisible. -----
    frames = list(
        synthesize_frames(plan, ROUND, 50_000, batch_size=5_000, rng=7)
    )
    answers = []
    for n_shards in (1, 4):
        with ShardedCollector(
            ServiceConfig(plan=plan, n_shards=n_shards)
        ) as collector:
            for frame, _n in frames:
                collector.submit_feed(frame, ROUND)
            answers.append(collector.estimate(ROUND)["estimates"])
    identical = json.dumps(answers[0]) == json.dumps(answers[1])
    print(f"1-shard vs 4-shard estimates bit-identical: {identical}")


if __name__ == "__main__":
    main()
