"""Streaming collection: the deployment-shaped client/server protocol.

Scenario: an app ships the SWClient to devices; reports arrive at the server
in batches over days. The server keeps only O(d) counters, can publish an
interim estimate at any time, and the final estimate equals what a one-shot
batch collection would have produced.

Also demonstrates the wire format (JSON lines) and the capacity-planning
helpers in ``repro.analysis``.

Run:  python examples/streaming_collection.py
"""

import numpy as np

from repro.analysis import olh_variance, required_population
from repro.datasets import taxi_dataset
from repro.metrics import wasserstein_distance
from repro.protocol import SWClient, SWServer

EPSILON = 1.0
ROUND = "pickup-times-2026-06"


def main() -> None:
    # --- Planning: how many users do we need? ------------------------------
    target_std = 0.002
    needed = required_population(EPSILON, target_std=target_std)
    print(f"Per-bucket std target {target_std} at eps={EPSILON} needs about "
          f"{needed:,} users (OLH-variance yardstick, {olh_variance(EPSILON):.2f}/n).")

    # --- The fleet: 300k devices reporting over five "days". ---------------
    ds = taxi_dataset(n=300_000, rng=21)
    truth = ds.histogram(512)
    client = SWClient(ROUND, epsilon=EPSILON)
    server = SWServer(ROUND, epsilon=EPSILON, d=512)

    days = np.array_split(ds.values, 5)
    for day, batch in enumerate(days, start=1):
        payload = client.report_batch(batch, rng=np.random.default_rng(day))
        first_line = payload.splitlines()[0]
        count = server.ingest_batch(payload)
        interim = server.estimate()
        err = wasserstein_distance(truth, interim)
        print(f"day {day}: +{count:,} reports (total {server.n_reports:,}), "
              f"interim W1 = {err:.5f}")
        if day == 1:
            print(f"  wire sample: {first_line}")

    # --- Final estimate. ----------------------------------------------------
    final = server.estimate()
    print(f"\nFinal Wasserstein distance: {wasserstein_distance(truth, final):.5f}")
    peak_hour = np.argmax(final) / 512 * 24
    print(f"Estimated busiest pickup time: {peak_hour:.1f}h "
          f"(truth {np.argmax(truth) / 512 * 24:.1f}h)")


if __name__ == "__main__":
    main()
