"""Quickstart: estimate a numerical distribution under epsilon-LDP.

Scenario: 100k users each hold one private value in [0, 1]. The aggregator
wants the value distribution without learning any individual's value. Each
user randomizes locally with the Square Wave mechanism; the server
reconstructs the histogram with EMS.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import SWEstimator, ks_distance, wasserstein_distance


def main() -> None:
    rng = np.random.default_rng(0)

    # --- The private data (never leaves the users in a real deployment). --
    values = rng.beta(5.0, 2.0, 100_000)

    # --- Client side: each user randomizes their own value. ---------------
    estimator = SWEstimator(epsilon=1.0, d=256)
    reports = estimator.privatize(values, rng=rng)
    print(f"Each user sent one float report in [{estimator.mechanism.output_low:.3f}, "
          f"{estimator.mechanism.output_high:.3f}]")
    print(f"Square Wave parameters: b={estimator.mechanism.b:.3f}, "
          f"p/q = e^eps = {estimator.mechanism.p / estimator.mechanism.q:.3f}")

    # --- Server side: aggregate the noisy reports. ------------------------
    histogram = estimator.aggregate(reports)
    print(f"\nReconstructed a {histogram.size}-bucket histogram "
          f"(EMS ran {estimator.result_.iterations} iterations)")

    # --- How good is it? (only possible in simulation) --------------------
    truth = np.bincount(
        np.minimum((values * 256).astype(int), 255), minlength=256
    ) / values.size
    print(f"Wasserstein distance to truth: {wasserstein_distance(truth, histogram):.5f}")
    print(f"KS distance to truth:          {ks_distance(truth, histogram):.5f}")

    # --- Use the estimate. -------------------------------------------------
    mids = (np.arange(256) + 0.5) / 256
    print(f"\nEstimated mean:   {histogram @ mids:.4f}  (true {values.mean():.4f})")
    est_median = mids[np.searchsorted(np.cumsum(histogram), 0.5)]
    print(f"Estimated median: {est_median:.4f}  (true {np.median(values):.4f})")


if __name__ == "__main__":
    main()
