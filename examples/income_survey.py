"""Income survey: spiky data and the EMS vs HH-ADMM trade-off.

Scenario: a statistics agency collects annual incomes under LDP. People
round their reported incomes ($30,000 rather than $29,850), so the true
distribution has tall spikes on a smooth body — the paper's income dataset.

This example shows the paper's Section 6.2 finding: SW+EMS wins on
Wasserstein distance (it recovers the body), while HH-ADMM wins on KS
distance and quantiles at larger epsilon (it preserves the spikes that EMS
smooths away).

Run:  python examples/income_survey.py
"""

import numpy as np

from repro import HHADMM, SWEstimator, ks_distance, wasserstein_distance
from repro.datasets import INCOME_CAP, income_dataset
from repro.metrics import quantile_error


def dollars(x: float) -> str:
    return f"${x * INCOME_CAP:,.0f}"


def main() -> None:
    print("Generating the income dataset (log-normal body + round-number spikes)...")
    ds = income_dataset(n=400_000, rng=11)
    truth = ds.histogram(1024)
    print(f"  {ds.n:,} users, spikiest bucket holds {truth.max():.2%} of all mass")

    epsilon = 2.0
    print(f"\nCollecting under epsilon = {epsilon} ...")
    sw = SWEstimator(epsilon, d=1024)
    sw_hist = sw.fit(ds.values, rng=np.random.default_rng(1))
    admm = HHADMM(epsilon, d=1024, branching=4)
    admm_hist = admm.fit(ds.values, rng=np.random.default_rng(2))

    print(f"\n{'metric':<24}{'SW+EMS':>12}{'HH-ADMM':>12}")
    for name, fn in (
        ("Wasserstein distance", wasserstein_distance),
        ("KS distance", ks_distance),
        ("quantile MAE", quantile_error),
    ):
        a, b = fn(truth, sw_hist), fn(truth, admm_hist)
        winner = "  <- SW" if a < b else "  <- ADMM"
        print(f"{name:<24}{a:>12.5f}{b:>12.5f}{winner}")

    # Inspect a spike: the $30k round-number bucket.
    spike_bucket = int(30_000 / INCOME_CAP * 1024)
    print(f"\nMass at the {dollars(spike_bucket / 1024)} spike bucket:")
    print(f"  truth    {truth[spike_bucket]:.4%}")
    print(f"  SW+EMS   {sw_hist[spike_bucket]:.4%}   (smoothed down)")
    print(f"  HH-ADMM  {admm_hist[spike_bucket]:.4%}   (spike preserved)")

    # Decile table from both estimates.
    print(f"\n{'decile':<10}{'truth':>12}{'SW+EMS':>12}{'HH-ADMM':>12}")
    cum_t, cum_s, cum_a = map(np.cumsum, (truth, sw_hist, admm_hist))
    for q in (0.25, 0.5, 0.75, 0.9):
        pos = lambda c: dollars(np.searchsorted(c, q) / 1024)  # noqa: E731
        print(f"{q:<10}{pos(cum_t):>12}{pos(cum_s):>12}{pos(cum_a):>12}")

    print(
        "\nTakeaway: pick SW+EMS for overall distribution shape; pick "
        "HH-ADMM when point masses (round-number reporting) matter."
    )


if __name__ == "__main__":
    main()
