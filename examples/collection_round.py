"""A sharded multi-attribute collection round over the v2 wire protocol.

Scenario: a fleet of devices holds two private attributes (income, age).
Three regional collectors each receive a shard of the fleet's reports as
*columnar binary frames* — one mixed frame per shard, carrying both
attributes under their mechanisms' payload codecs — aggregate them with a
``PlanServer``, and ship O(state) shard summaries to a coordinator that
merges them exactly and answers every planned task in real-world units.

Also demonstrates the incremental mid-round estimate: after a small late
batch arrives, ``estimate()`` warm-starts EM from the cached posterior
instead of re-solving from the uniform prior.

Run:  PYTHONPATH=src python examples/collection_round.py
"""

import numpy as np

from repro.protocol import PlanServer
from repro.tasks import (
    AnalysisPlan,
    AttributeSpec,
    Distribution,
    Mean,
    Quantiles,
    Session,
)

ROUND = "survey-2026-07"
N_USERS = 300_000
N_SHARDS = 3


def make_plan() -> AnalysisPlan:
    return AnalysisPlan(
        epsilon=2.0,
        attributes=(
            AttributeSpec(name="income", low=0.0, high=200_000.0),
            AttributeSpec(name="age", low=18.0, high=90.0),
        ),
        tasks=(
            Distribution(attribute="income"),
            Quantiles(attribute="income", quantiles=(0.25, 0.5, 0.75)),
            Mean(attribute="age"),
        ),
    )


def main() -> None:
    plan = make_plan()
    gen = np.random.default_rng(42)
    population = {
        "income": gen.gamma(3.0, 18_000.0, N_USERS).clip(0, 200_000),
        "age": gen.normal(44.0, 13.0, N_USERS).clip(18, 90),
    }

    # --- Client side: each shard's devices randomize and pack one frame. ---
    client = Session(plan)  # holds only public parameters
    bounds = np.linspace(0, N_USERS, N_SHARDS + 1).astype(int)
    frames = []
    for lo, hi in zip(bounds[:-1], bounds[1:]):
        reports = client.privatize(
            {name: values[lo:hi] for name, values in population.items()}, rng=gen
        )
        frames.append(client.to_feed(reports, ROUND, format="frame"))
    sizes = ", ".join(f"{len(f) / 1e6:.1f} MB" for f in frames)
    print(f"{N_SHARDS} shard frames ({sizes}) for {N_USERS:,} users")

    # --- Regional collectors: one PlanServer per shard, O(state) memory. ---
    shards = []
    for frame in frames:
        server = PlanServer(plan, ROUND)
        count = server.ingest_feed(frame)
        print(f"  shard ingested {count:,} reports -> {server.n_reports}")
        shards.append(server)

    # --- Coordinator: merge shard state exactly, answer the plan. ----------
    coordinator = shards[0].merge(shards[1]).merge(shards[2])
    report = coordinator.report()
    q25, q50, q75 = report["quantiles:income"].value
    print(f"\nincome quartiles: {q25:,.0f} / {q50:,.0f} / {q75:,.0f} "
          f"(truth {np.percentile(population['income'], 50):,.0f} median)")
    print(f"mean age: {report['mean:age'].value:.1f} "
          f"(truth {population['age'].mean():.1f})")

    # --- Mid-round increment: a late batch, then a warm re-estimate. -------
    income_server = coordinator.server("income")
    cold_iterations = income_server.estimator.result_.iterations
    late = client.privatize(
        {name: values[:2_000] for name, values in population.items()}, rng=gen
    )
    coordinator.ingest_feed(client.to_feed(late, ROUND, format="frame"))
    coordinator.estimate("income")
    warm_iterations = income_server.estimator.result_.iterations
    print(f"\nlate batch of 2,000: warm re-estimate took {warm_iterations} EM "
          f"iterations (cold solve took {cold_iterations})")


if __name__ == "__main__":
    main()
