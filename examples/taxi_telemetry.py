"""Taxi telemetry: range queries over a daily activity pattern.

Scenario: a ride-hailing app wants the distribution of pickup times across
the day for capacity planning — "how many pickups between 7 and 9 am?" —
while each driver's individual pickups stay private.

Demonstrates range queries on the reconstructed distribution, the effect of
the privacy budget, and a comparison against CFO-with-binning whose coarse
bins blur the rush-hour peaks.

Run:  python examples/taxi_telemetry.py
"""

import numpy as np

from repro import CFOBinning, SWEstimator, range_query
from repro.datasets import taxi_dataset


def hour_range(hist: np.ndarray, start_hour: float, end_hour: float) -> float:
    return range_query(hist, start_hour / 24.0, (end_hour - start_hour) / 24.0)


def main() -> None:
    print("Generating pickup-time data (daily rhythm on [0, 24h))...")
    ds = taxi_dataset(n=500_000, rng=3)
    truth = ds.histogram(1024)

    windows = [
        ("overnight 2-5am", 2, 5),
        ("morning rush 7-9am", 7, 9),
        ("midday 11am-2pm", 11, 14),
        ("evening rush 6-9pm", 18, 21),
    ]

    print("\nEffect of the privacy budget on range-query accuracy (SW+EMS):")
    header = f"{'window':<22}{'truth':>9}"
    epsilons = (0.5, 1.0, 2.0)
    for eps in epsilons:
        header += f"{'eps=' + str(eps):>11}"
    print(header)
    estimates = {}
    for eps in epsilons:
        est = SWEstimator(eps, d=1024)
        estimates[eps] = est.fit(ds.values, rng=np.random.default_rng(int(eps * 10)))
    for label, lo, hi in windows:
        row = f"{label:<22}{hour_range(truth, lo, hi):>9.4f}"
        for eps in epsilons:
            row += f"{hour_range(estimates[eps], lo, hi):>11.4f}"
        print(row)

    print("\nSW+EMS vs coarse binning at eps=1 (16 bins = 90-minute buckets):")
    cfo = CFOBinning(1.0, d=1024, bins=16).fit(ds.values, rng=np.random.default_rng(7))
    sw = estimates[1.0]
    print(f"{'window':<22}{'truth':>9}{'SW+EMS':>11}{'CFO-16':>11}")
    for label, lo, hi in windows:
        t = hour_range(truth, lo, hi)
        print(
            f"{label:<22}{t:>9.4f}{hour_range(sw, lo, hi):>11.4f}"
            f"{hour_range(cfo, lo, hi):>11.4f}"
        )

    # Peak detection: when is the evening rush at its worst?
    peak_truth = np.argmax(truth) / 1024 * 24
    peak_sw = np.argmax(sw) / 1024 * 24
    print(f"\nBusiest time of day: truth {peak_truth:.1f}h, SW+EMS estimate {peak_sw:.1f}h")


if __name__ == "__main__":
    main()
