"""Unit tests for the unit-domain mean/variance protocols."""

import numpy as np
import pytest

from repro.mean.variance import (
    estimate_mean_unit,
    estimate_variance_unit,
    make_mechanism,
)
from repro.mean.piecewise import PiecewiseMechanism
from repro.mean.stochastic_rounding import StochasticRounding


class TestMakeMechanism:
    def test_sr(self):
        assert isinstance(make_mechanism("sr", 1.0), StochasticRounding)

    def test_pm(self):
        assert isinstance(make_mechanism("pm", 1.0), PiecewiseMechanism)

    def test_unknown(self):
        with pytest.raises(ValueError, match="mechanism"):
            make_mechanism("laplace", 1.0)


class TestEstimateMeanUnit:
    @pytest.mark.parametrize("mechanism", ["sr", "pm"])
    def test_accurate_at_high_epsilon(self, mechanism, beta_values, rng):
        est = estimate_mean_unit(beta_values, 4.0, mechanism, rng=rng)
        assert est == pytest.approx(beta_values.mean(), abs=0.02)

    def test_clipped_to_unit(self, rng):
        # Extreme noise cannot push the estimate outside [0, 1].
        values = np.full(100, 0.99)
        for seed in range(5):
            est = estimate_mean_unit(values, 0.1, "sr", rng=seed)
            assert 0.0 <= est <= 1.0

    def test_rejects_bad_values(self, rng):
        with pytest.raises(ValueError):
            estimate_mean_unit(np.array([1.5]), 1.0, "pm", rng=rng)


class TestEstimateVarianceUnit:
    @pytest.mark.parametrize("mechanism", ["sr", "pm"])
    def test_accurate_at_high_epsilon(self, mechanism, beta_values, rng):
        mean_est, var_est = estimate_variance_unit(
            beta_values, 4.0, mechanism, rng=rng
        )
        assert mean_est == pytest.approx(beta_values.mean(), abs=0.03)
        assert var_est == pytest.approx(beta_values.var(), abs=0.01)

    def test_variance_nonnegative(self, rng):
        values = rng.random(1000)
        for seed in range(3):
            _, var = estimate_variance_unit(values, 0.2, "sr", rng=seed)
            assert 0.0 <= var <= 1.0

    def test_mean_fraction_validated(self, beta_values):
        with pytest.raises(ValueError):
            estimate_variance_unit(beta_values, 1.0, "pm", mean_fraction=1.0)

    def test_needs_two_users(self):
        with pytest.raises(ValueError):
            estimate_variance_unit(np.array([0.5]), 1.0, "pm")

    def test_split_uses_disjoint_groups(self, rng):
        """Sanity: protocol runs with exactly 2 users (1 per phase)."""
        mean_est, var_est = estimate_variance_unit(
            np.array([0.4, 0.6]), 1.0, "sr", rng=rng
        )
        assert 0.0 <= mean_est <= 1.0
        assert 0.0 <= var_est <= 1.0
