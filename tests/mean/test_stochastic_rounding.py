"""Unit and statistical tests for Stochastic Rounding."""

import math

import numpy as np
import pytest

from repro.mean.stochastic_rounding import StochasticRounding


class TestSRParameters:
    def test_probabilities(self):
        sr = StochasticRounding(math.log(3.0))
        assert sr.p == pytest.approx(0.75)
        assert sr.q == pytest.approx(0.25)

    def test_report_bound(self):
        sr = StochasticRounding(1.0)
        assert sr.report_bound == pytest.approx(1.0 / (sr.p - sr.q))


class TestSRPrivatize:
    def test_reports_are_extremes(self, rng):
        sr = StochasticRounding(1.0)
        reports = sr.privatize(rng.uniform(-1, 1, 1000), rng=rng)
        assert set(np.unique(reports)) <= {-1.0, 1.0}

    def test_positive_input_biases_positive(self, rng):
        sr = StochasticRounding(2.0)
        reports = sr.privatize(np.full(50_000, 0.8), rng=rng)
        assert (reports == 1.0).mean() > 0.6

    def test_probability_formula(self, rng):
        sr = StochasticRounding(1.0)
        v = 0.3
        reports = sr.privatize(np.full(100_000, v), rng=rng)
        expected = sr.q + (sr.p - sr.q) * (1 + v) / 2
        assert (reports == 1.0).mean() == pytest.approx(expected, abs=0.005)

    def test_rejects_out_of_range(self, rng):
        with pytest.raises(ValueError):
            StochasticRounding(1.0).privatize(np.array([1.5]), rng=rng)


class TestSREstimate:
    @pytest.mark.parametrize("true_mean", [-0.5, 0.0, 0.7])
    def test_unbiased_mean(self, true_mean, rng):
        sr = StochasticRounding(1.0)
        values = np.clip(rng.normal(true_mean, 0.2, 100_000), -1, 1)
        est = sr.mean_from_values(values, rng=rng)
        assert est == pytest.approx(values.mean(), abs=0.02)

    def test_debias_per_report(self):
        sr = StochasticRounding(1.0)
        np.testing.assert_allclose(
            sr.debias(np.array([1.0, -1.0])),
            [sr.report_bound, -sr.report_bound],
        )

    def test_debias_rejects_invalid(self):
        with pytest.raises(ValueError):
            StochasticRounding(1.0).debias(np.array([0.5]))

    def test_expectation_identity(self, rng):
        """E[v~] = v for a fixed input (the paper's Section 2.2 identity)."""
        sr = StochasticRounding(1.5)
        v = -0.4
        reports = sr.privatize(np.full(200_000, v), rng=rng)
        assert sr.debias(reports).mean() == pytest.approx(v, abs=0.02)
