"""Unit, statistical, and privacy tests for the Piecewise Mechanism."""

import math

import numpy as np
import pytest

from repro.mean.piecewise import PiecewiseMechanism
from repro.privacy.audit import audit_continuous_mechanism


class TestPMParameters:
    def test_s_formula(self):
        pm = PiecewiseMechanism(2.0)
        half = math.exp(1.0)
        assert pm.s == pytest.approx((half + 1) / (half - 1))

    def test_window_width_constant(self):
        pm = PiecewiseMechanism(1.0)
        for v in (-1.0, 0.0, 0.5, 1.0):
            left, right = pm.window(np.array([v]))
            assert right[0] - left[0] == pytest.approx(
                2.0 / (math.exp(0.5) - 1.0)
            )

    def test_window_inside_output_domain(self):
        pm = PiecewiseMechanism(1.0)
        left, right = pm.window(np.array([-1.0, 1.0]))
        assert left.min() >= -pm.s - 1e-12
        assert right.max() <= pm.s + 1e-12

    def test_extreme_input_window_touches_edge(self):
        """Paper: for v=-1 the window is [-s, -1] — the input is *not*
        centered, which is what keeps PM unbiased."""
        pm = PiecewiseMechanism(1.0)
        left, right = pm.window(np.array([-1.0]))
        assert left[0] == pytest.approx(-pm.s)
        assert right[0] == pytest.approx(-1.0)


class TestPMPrivatize:
    def test_reports_in_domain(self, rng):
        pm = PiecewiseMechanism(1.0)
        reports = pm.privatize(rng.uniform(-1, 1, 20_000), rng=rng)
        assert np.abs(reports).max() <= pm.s + 1e-12

    def test_window_hit_rate(self, rng):
        pm = PiecewiseMechanism(1.0)
        v = 0.2
        reports = pm.privatize(np.full(100_000, v), rng=rng)
        left, right = pm.window(np.array([v]))
        rate = ((reports >= left[0]) & (reports <= right[0])).mean()
        assert rate == pytest.approx(pm.window_mass, abs=0.005)

    @pytest.mark.parametrize("v", [-1.0, -0.3, 0.0, 0.6, 1.0])
    def test_unbiased_per_input(self, v, rng):
        pm = PiecewiseMechanism(1.0)
        reports = pm.privatize(np.full(300_000, v), rng=rng)
        assert reports.mean() == pytest.approx(v, abs=0.02)

    def test_empirical_density_matches_pdf(self, rng):
        pm = PiecewiseMechanism(1.0)
        v = 0.4
        reports = pm.privatize(np.full(400_000, v), rng=rng)
        counts, edges = np.histogram(reports, bins=60, range=(-pm.s, pm.s), density=True)
        centers = (edges[:-1] + edges[1:]) / 2
        expected = pm.pdf(v, centers)
        left, right = pm.window(np.array([v]))
        width = edges[1] - edges[0]
        interior = (np.abs(centers - left[0]) > width) & (np.abs(centers - right[0]) > width)
        np.testing.assert_allclose(counts[interior], expected[interior], rtol=0.15)


class TestPMEstimate:
    def test_mean_estimation(self, rng):
        pm = PiecewiseMechanism(2.0)
        values = np.clip(rng.normal(0.3, 0.4, 100_000), -1, 1)
        assert pm.mean_from_values(values, rng=rng) == pytest.approx(
            values.mean(), abs=0.02
        )

    def test_rejects_out_of_domain_reports(self):
        pm = PiecewiseMechanism(1.0)
        with pytest.raises(ValueError):
            pm.estimate_mean(np.array([pm.s + 1.0]))


class TestPMPrivacy:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
    def test_ldp_audit(self, epsilon):
        pm = PiecewiseMechanism(epsilon)

        class _Wrapper:
            """Adapt PM's [-1,1] input domain to the audit's [0,1] grid."""

            def __init__(self, pm):
                self.pm = pm
                self.epsilon = pm.epsilon
                self.output_low = -pm.s
                self.output_high = pm.s

            def pdf(self, v01, outputs):
                return self.pm.pdf(2 * v01 - 1, outputs)

        result = audit_continuous_mechanism(_Wrapper(pm))
        assert result.satisfied
        assert result.max_ratio == pytest.approx(math.exp(epsilon), rel=1e-6)
