"""StreamingCollector: warm starts, fusion, fingerprint skips, drift."""

import numpy as np
import pytest

from repro.api import make_estimator
from repro.streaming import StreamingCollector
from repro.streaming.scheduler import iter_ticks
from repro.streaming.telemetry import drifting_stream
from repro.tasks import AnalysisPlan, AttributeSpec, Distribution, plan_analysis
from repro.utils.rng import as_generator


def _collector(n_attrs=1, **kwargs):
    templates = {
        f"a{i}": make_estimator("sw-ems", 1.0, 64) for i in range(n_attrs)
    }
    return StreamingCollector(templates, **kwargs)


def _rounds(collector, seed, n=500):
    gen = as_generator(seed)
    return {
        name: collector.make_round(name, gen.random(n), rng=gen)
        for name in collector.attributes
    }


class TestTickBasics:
    def test_first_tick_is_cold_then_warm(self):
        collector = _collector(window=4)
        first = collector.tick(_rounds(collector, seed=0))
        assert not first.attributes["a0"].warm
        second = collector.tick(_rounds(collector, seed=1))
        assert second.attributes["a0"].warm
        assert second.tick == 2

    def test_warm_ticks_take_fewer_iterations(self):
        """The headline amortization: warm EM beats cold EM on a slow stream."""
        warm = _collector(window=8)
        cold = _collector(window=8, warm_start=False)
        warm_total = cold_total = 0
        for seed in range(1, 6):
            warm_total += warm.tick(_rounds(warm, seed)).total_iterations
            cold_total += cold.tick(_rounds(cold, seed)).total_iterations
        assert warm_total < cold_total

    def test_estimate_is_a_distribution(self):
        collector = _collector(window=4)
        result = collector.tick(_rounds(collector, seed=0))
        estimate = result.attributes["a0"].estimate
        assert estimate.shape == (64,)
        assert estimate.sum() == pytest.approx(1.0)
        assert collector.estimates()["a0"] is not estimate  # copies, no aliasing

    def test_unknown_attribute_rejected(self):
        collector = _collector()
        with pytest.raises(KeyError, match="unknown attributes"):
            collector.tick({"nope": make_estimator("sw-ems", 1.0, 64)})

    def test_unchanged_window_is_skipped(self):
        collector = _collector(n_attrs=2, window=4)
        gen = as_generator(0)
        collector.tick(_rounds(collector, seed=0))
        # advance only a0; a1's window (and fingerprint) is unchanged
        partial = {"a0": collector.make_round("a0", gen.random(500), rng=gen)}
        result = collector.tick(partial)
        assert not result.attributes["a0"].skipped
        assert result.attributes["a1"].skipped
        assert result.skipped == 1 and result.solved == 1

    def test_empty_window_is_skipped_not_raised(self):
        collector = _collector()
        result = collector.tick({})
        assert result.attributes["a0"].empty
        assert result.attributes["a0"].estimate is None

    def test_to_dict_is_json_ready(self):
        import json

        collector = _collector(window=2)
        result = collector.tick(_rounds(collector, seed=0))
        assert json.dumps(result.to_dict())


class TestFusion:
    def test_same_config_attributes_fuse(self):
        collector = _collector(n_attrs=3, window=4)
        result = collector.tick(_rounds(collector, seed=0))
        assert result.fused_groups == 1
        assert all(t.fused for t in result.attributes.values())

    def test_fused_matches_solo_solve(self):
        """Fusion is a dispatch optimization, not a different estimator."""
        fused = _collector(n_attrs=2, window=4)
        solo = _collector(n_attrs=1, window=4)
        gen_a = as_generator(7)
        gen_b = as_generator(7)
        values = gen_a.random(800)
        rounds_fused = {
            "a0": fused.make_round("a0", values, rng=as_generator(1)),
            "a1": fused.make_round("a1", values, rng=as_generator(2)),
        }
        rounds_solo = {
            "a0": solo.make_round("a0", values, rng=as_generator(1)),
        }
        del gen_b
        fused_result = fused.tick(rounds_fused)
        solo_result = solo.tick(rounds_solo)
        np.testing.assert_allclose(
            fused_result.attributes["a0"].estimate,
            solo_result.attributes["a0"].estimate,
        )

    def test_mixed_families_do_not_fuse(self):
        templates = {
            "wave": make_estimator("sw-ems", 1.0, 64),
            "oracle": make_estimator("grr", 1.0, 64),
        }
        collector = StreamingCollector(templates, window=4)
        gen = as_generator(0)
        rounds = {
            "wave": collector.make_round("wave", gen.random(400), rng=gen),
            "oracle": collector.make_round(
                "oracle", gen.integers(0, 64, size=400), rng=gen
            ),
        }
        result = collector.tick(rounds)
        assert result.fused_groups == 0
        assert not result.attributes["oracle"].fused


class TestDrift:
    def test_drift_checks_fire_on_cadence(self):
        collector = _collector(window=4, drift_every=2, drift_threshold=0.5)
        for seed in range(1, 5):
            collector.tick(_rounds(collector, seed))
        checked_ticks = {c.tick for c in collector.drift.checks}
        assert checked_ticks == {2, 4}

    def test_drift_invalidation_adopts_fresh_posterior(self):
        """A tiny threshold forces every checked tick to re-anchor cold."""
        collector = _collector(window=1, drift_every=1, drift_threshold=1e-12)
        stream = drifting_stream(4, 800, rng=0)
        drifted = []
        for values in stream:
            rounds = {"a0": collector.make_round("a0", values, rng=as_generator(1))}
            result = collector.tick(rounds)
            drifted.append(result.attributes["a0"].drifted)
        assert not drifted[0]  # first tick is cold: nothing to cross-check
        assert any(drifted[1:])

    def test_drift_disabled_by_default(self):
        collector = _collector(window=2)
        for seed in range(3):
            collector.tick(_rounds(collector, seed))
        assert collector.drift.checks == []


class TestModesAndAudit:
    def test_window_and_decay_are_exclusive(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            _collector(window=2, decay=0.5)

    def test_empty_templates_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            StreamingCollector({})

    def test_effective_rounds_per_mode(self):
        assert _collector(window=7).effective_rounds == 7
        assert _collector(decay=0.9).effective_rounds == 10
        cumulative = _collector()
        assert cumulative.effective_rounds == 1
        cumulative.tick(_rounds(cumulative, seed=0))
        cumulative.tick(_rounds(cumulative, seed=1))
        assert cumulative.effective_rounds == 2

    def test_audit_reports_window_spend(self):
        collector = _collector(window=3)
        audit = collector.audit({"a0": 1.0}, 3.0)
        assert audit.rounds == 3
        assert audit.per_window_epsilon == pytest.approx(3.0)
        assert audit.satisfied
        assert not collector.audit({"a0": 1.0}, 2.0).satisfied

    def test_from_plan(self):
        plan = AnalysisPlan(
            attributes=[
                AttributeSpec(name="income", low=0.0, high=1.0),
                AttributeSpec(name="age", low=0.0, high=1.0),
            ],
            tasks=[Distribution(attribute="income"), Distribution(attribute="age")],
            epsilon=2.0,
        )
        collector = StreamingCollector.from_plan(plan, window=4)
        assert set(collector.attributes) == {"income", "age"}
        planned = plan_analysis(plan)
        collector2 = StreamingCollector.from_plan(planned, window=4)
        assert set(collector2.attributes) == {"income", "age"}


class TestIterTicks:
    def test_summary_counts(self):
        collector = _collector(n_attrs=2, window=4, drift_every=2, drift_threshold=0.5)
        results = [collector.tick(_rounds(collector, seed)) for seed in range(1, 4)]
        summary = iter_ticks(results)
        assert summary["n_ticks"] == 3
        assert summary["solved"] == 6
        assert summary["total_iterations"] > 0
        assert summary["fused_groups"] == 3
