"""Window states: O(d) maintenance vs re-ingesting, exactness, validation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api import make_estimator
from repro.streaming import CumulativeState, DecayedState, SlidingWindowState
from repro.streaming.window import clone_template
from repro.utils.rng import as_generator


def _template(d=64):
    return make_estimator("sw-ems", 1.0, d)


def _round(template, seed, n=300):
    gen = as_generator(seed)
    est = clone_template(template)
    est.partial_fit(gen.random(n), rng=gen)
    return est


class TestCloneTemplate:
    def test_clone_is_fresh_and_parametrically_equal(self):
        template = _round(_template(), seed=0)
        clone = clone_template(template)
        assert type(clone) is type(template)
        assert clone._params() == template._params()
        assert clone.n_reports == 0
        assert template.n_reports == 300


class TestSlidingWindow:
    def test_advance_is_bit_identical_to_reingest(self):
        template = _template()
        win = SlidingWindowState(template, window=4)
        for seed in range(10):
            win.push(_round(template, seed))
            rebuilt = win.rebuild()
            assert (win.current._counts == rebuilt._counts).all()
            assert win.current.n_reports == rebuilt.n_reports

    @settings(max_examples=20, deadline=None)
    @given(
        window=st.integers(min_value=1, max_value=6),
        n_rounds=st.integers(min_value=1, max_value=12),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_bit_identity_property(self, window, n_rounds, seed):
        """Exactness holds for every (window, stream length) combination."""
        template = _template(d=16)
        win = SlidingWindowState(template, window=window)
        for i in range(n_rounds):
            win.push(_round(template, seed + i, n=50))
        rebuilt = win.rebuild()
        assert (win.current._counts == rebuilt._counts).all()
        assert win.n_in_window == min(window, n_rounds)

    def test_eviction_caps_window(self):
        template = _template()
        win = SlidingWindowState(template, window=2)
        rounds = [_round(template, seed) for seed in range(3)]
        for est in rounds:
            win.push(est)
        assert win.n_in_window == 2
        assert win.n_rounds == 3
        expected = rounds[1]._counts + rounds[2]._counts
        assert (win.current._counts == expected).all()

    def test_window_validation(self):
        with pytest.raises(ValueError, match="window"):
            SlidingWindowState(_template(), window=0)

    def test_incompatible_round_rejected(self):
        template = _template()
        win = SlidingWindowState(template, window=2)
        with pytest.raises(TypeError, match="window is over"):
            win.push(make_estimator("grr", 1.0, 64))
        other = make_estimator("sw-ems", 2.0, 64)
        with pytest.raises(ValueError, match="template"):
            win.push(other)

    def test_fingerprint_tracks_content(self):
        template = _template()
        a = SlidingWindowState(template, window=2)
        b = SlidingWindowState(template, window=2)
        r = _round(template, seed=0)
        a.push(r)
        b.push(r)
        assert a.fingerprint() == b.fingerprint()
        b.push(_round(template, seed=1))
        assert a.fingerprint() != b.fingerprint()

    def test_memory_is_payloads_not_reports(self):
        """The ring holds W state dicts regardless of per-round volume."""
        template = _template()
        win = SlidingWindowState(template, window=3)
        for seed in range(6):
            win.push(_round(template, seed, n=2000))
        assert len(win._ring) == 3
        assert all(isinstance(p, dict) for p in win._ring)


class TestDecayedState:
    def test_decay_matches_explicit_recursion(self):
        template = _template()
        decay = 0.5
        state = DecayedState(template, decay=decay)
        rounds = [_round(template, seed) for seed in range(4)]
        expected = np.zeros(template.channel.d_out)
        for est in rounds:
            state.push(est)
            expected = decay * expected + est._counts
        assert np.allclose(state.current._counts, expected)

    def test_repeated_decay_does_not_compound_truncation(self):
        """The accumulator lives in float payload space, not estimator space."""
        template = _template()
        state = DecayedState(template, decay=0.9)
        for seed in range(20):
            state.push(_round(template, seed, n=30))
        # materialize twice: the second read must not re-truncate
        first = state.current._counts.copy()
        second = state.current._counts
        assert (first == second).all()

    def test_decay_validation(self):
        for bad in (0.0, 1.0, -0.5, 1.5):
            with pytest.raises(ValueError, match="decay"):
                DecayedState(_template(), decay=bad)

    def test_effective_window(self):
        assert DecayedState(_template(), decay=0.9).effective_window == pytest.approx(10.0)

    def test_fingerprint_changes_on_push(self):
        template = _template()
        state = DecayedState(template, decay=0.5)
        empty = state.fingerprint()
        state.push(_round(template, seed=0))
        assert state.fingerprint() != empty


class TestCumulativeState:
    def test_push_accumulates_everything(self):
        template = _template()
        state = CumulativeState(template)
        rounds = [_round(template, seed) for seed in range(3)]
        for est in rounds:
            state.push(est)
        total = sum(r._counts for r in rounds)
        assert (state.current._counts == total).all()
        assert state.n_rounds == 3


class TestArithmeticGate:
    def test_opt_out_template_rejected(self):
        template = _template()
        template.state_arithmetic = False
        for make in (
            lambda: SlidingWindowState(template, window=2),
            lambda: DecayedState(template, decay=0.5),
            lambda: CumulativeState(template),
        ):
            with pytest.raises(TypeError, match="state_arithmetic"):
                make()
