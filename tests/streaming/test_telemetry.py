"""Synthetic drifting streams: shape, domain, seeding, drift direction."""

import numpy as np
import pytest

from repro.streaming import drifting_stream, shifting_mixture_stream


class TestDriftingStream:
    def test_shapes_and_domain(self):
        ticks = list(drifting_stream(5, 200, rng=0))
        assert len(ticks) == 5
        for values in ticks:
            assert values.shape == (200,)
            assert values.min() >= 0.0 and values.max() <= 1.0

    def test_center_drifts_from_start_to_end(self):
        ticks = list(drifting_stream(10, 5000, start=0.2, end=0.8, rng=0))
        assert ticks[0].mean() == pytest.approx(0.2, abs=0.02)
        assert ticks[-1].mean() == pytest.approx(0.8, abs=0.02)
        means = [t.mean() for t in ticks]
        assert means == sorted(means)

    def test_seeding_is_reproducible(self):
        a = list(drifting_stream(3, 100, rng=7))
        b = list(drifting_stream(3, 100, rng=7))
        for x, y in zip(a, b):
            assert (x == y).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            list(drifting_stream(0, 10))
        with pytest.raises(ValueError):
            list(drifting_stream(10, 0))


class TestShiftingMixtureStream:
    def test_mass_shifts_between_modes(self):
        ticks = list(shifting_mixture_stream(10, 5000, rng=0))
        first, second = 0.33, 0.75
        cut = (first + second) / 2.0
        early = np.mean(ticks[0] > cut)
        late = np.mean(ticks[-1] > cut)
        assert early == pytest.approx(0.2, abs=0.03)
        assert late == pytest.approx(0.8, abs=0.03)

    def test_domain_and_seeding(self):
        a = list(shifting_mixture_stream(4, 300, rng=3))
        b = list(shifting_mixture_stream(4, 300, rng=3))
        for x, y in zip(a, b):
            assert (x == y).all()
            assert x.min() >= 0.0 and x.max() <= 1.0
