"""Parallel sweep runner: n_jobs > 1 must be bit-identical to serial."""

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.experiments.runner import SweepConfig, _resolve_jobs, run_sweep


@pytest.fixture(scope="module")
def tiny_dataset():
    values = np.random.default_rng(0).beta(5, 2, 4000)
    return Dataset(name="beta", values=values, default_bins=32)


class TestParallelEqualsSerial:
    def test_distribution_methods(self, tiny_dataset):
        config = SweepConfig(
            dataset="beta",
            methods=("sw-ems", "cfo-16"),
            epsilons=(1.0, 2.0),
            metrics=("w1", "range-0.1"),
            repeats=2,
            seed=13,
        )
        serial = run_sweep(config, dataset=tiny_dataset)
        parallel = run_sweep(config, dataset=tiny_dataset, n_jobs=2)
        assert serial == parallel  # bit-identical, not just approximately

    def test_scalar_and_leaf_signed_methods(self, tiny_dataset):
        config = SweepConfig(
            dataset="beta",
            methods=("pm", "haar-hrr"),
            epsilons=(1.0,),
            metrics=("mean", "range-0.1"),
            repeats=3,
            seed=21,
        )
        serial = run_sweep(config, dataset=tiny_dataset)
        parallel = run_sweep(config, dataset=tiny_dataset, n_jobs=2)
        assert serial == parallel

    def test_parallel_run_is_deterministic(self, tiny_dataset):
        config = SweepConfig(
            dataset="beta",
            methods=("sw-ems",),
            epsilons=(1.0,),
            metrics=("w1",),
            repeats=2,
            seed=11,
        )
        a = run_sweep(config, dataset=tiny_dataset, n_jobs=2)
        b = run_sweep(config, dataset=tiny_dataset, n_jobs=2)
        assert a == b


class TestJobResolution:
    def test_defaults(self):
        assert _resolve_jobs(None) == 1
        assert _resolve_jobs(1) == 1
        assert _resolve_jobs(4) == 4

    def test_all_cores(self):
        assert _resolve_jobs(-1) >= 1

    def test_rejects_invalid(self):
        with pytest.raises(ValueError, match="n_jobs"):
            _resolve_jobs(0)
        with pytest.raises(ValueError, match="n_jobs"):
            _resolve_jobs(-2)
