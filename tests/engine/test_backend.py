"""Compute backends: equivalence, determinism, registry, plumbing.

The load-bearing guarantees:

* the ``threaded`` backend (and ``numba``, when the optional dependency is
  installed) matches the NumPy backend to 1e-12 on full EM/EMS solves —
  dense channels and structured operators alike (hypothesis-driven);
* threaded results are *bit-identical* for every worker count — shard
  boundaries depend on the data shape, never on the pool size;
* OLH support counts and frame decode are exactly equal through every
  backend;
* the process-wide ``set_backend``/``use_backend`` state, the
  ``make_backend`` registry (memoization, ``"threaded:N"`` parsing), the
  ``REPRO_BACKEND`` env-var fallback, and the ``EMConfig.backend`` field
  all behave as documented.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.config import EMConfig
from repro.core.smoothing import binomial_kernel
from repro.core.square_wave import DiscreteSquareWave, SquareWave
from repro.engine.backend import (
    BACKEND_ENV_VAR,
    BackendUnavailableError,
    NumpyBackend,
    ThreadedBackend,
    _initial_backend,
    available_backends,
    backend,
    effective_cpu_count,
    make_backend,
    resolve_backend,
    set_backend,
    use_backend,
)
from repro.engine.cache import cached_channel_operator
from repro.engine.solver import batched_expectation_maximization
from repro.freq_oracle.olh import OLH
from repro.protocol.frames import decode_frame_grouped, encode_frame_blocks
from repro.protocol.server import CollectionServer, estimate_rounds

ATOL = 1e-12

WORKER_COUNTS = (1, 2, 4, 8)


def _numba_or_skip():
    try:
        return make_backend("numba")
    except BackendUnavailableError:
        pytest.skip("numba not installed")


def _em_problem(seed, d, batch, *, dense):
    """A seeded (channel, counts) pair; dense matrix or structured operator."""
    rng = np.random.default_rng(seed)
    sw = SquareWave(1.0)
    if dense:
        channel = np.asarray(sw.transition_matrix(d, d))
        probe = channel
    else:
        channel = cached_channel_operator(DiscreteSquareWave(1.0, d))
        probe = channel.to_dense()
    counts = np.stack(
        [
            rng.multinomial(
                20_000, probe @ rng.dirichlet(np.ones(probe.shape[1]))
            ).astype(float)
            for _ in range(batch)
        ],
        axis=1,
    )
    return channel, counts


# -- solver equivalence --------------------------------------------------------


class TestSolverEquivalence:
    # Iterations are pinned (tol=-1.0) so the numpy-vs-threaded comparison
    # is at a fixed iteration count: the 1e-12 contract is on values, and a
    # ~1e-17 sliced-BLAS drift must not be allowed to flip a stop decision
    # and turn a value test into a convergence-boundary test.
    @settings(max_examples=20, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        d=st.integers(8, 96),
        batch=st.integers(1, 24),
        dense=st.booleans(),
        smoothing=st.booleans(),
        workers=st.sampled_from(WORKER_COUNTS),
    )
    def test_threaded_matches_numpy(
        self, seed, d, batch, dense, smoothing, workers
    ):
        channel, counts = _em_problem(seed, d, batch, dense=dense)
        kernel = binomial_kernel(2) if smoothing else None
        kwargs = dict(tol=-1.0, max_iter=25, smoothing_kernel=kernel)
        reference = batched_expectation_maximization(
            channel, counts, backend=NumpyBackend(), **kwargs
        )
        result = batched_expectation_maximization(
            channel, counts, backend=make_backend(f"threaded:{workers}"), **kwargs
        )
        np.testing.assert_allclose(
            result.estimates, reference.estimates, atol=ATOL, rtol=0.0
        )
        assert np.array_equal(result.iterations, reference.iterations)

    def test_numba_matches_numpy(self):
        numba = _numba_or_skip()
        for dense in (True, False):
            channel, counts = _em_problem(7, 48, 8, dense=dense)
            reference = batched_expectation_maximization(
                channel, counts, tol=-1.0, max_iter=25, backend=NumpyBackend()
            )
            result = batched_expectation_maximization(
                channel, counts, tol=-1.0, max_iter=25, backend=numba
            )
            np.testing.assert_allclose(
                result.estimates, reference.estimates, atol=ATOL, rtol=0.0
            )

    def test_default_backend_is_bitwise_historical(self):
        # backend=None resolves to the process-wide NumPy backend, whose
        # primitives are the literal expressions the solver used to inline.
        channel, counts = _em_problem(3, 64, 6, dense=True)
        explicit = batched_expectation_maximization(
            channel, counts, backend=NumpyBackend()
        )
        default = batched_expectation_maximization(channel, counts)
        assert np.array_equal(default.estimates, explicit.estimates)
        assert np.array_equal(default.iterations, explicit.iterations)


class TestDeterminism:
    @settings(max_examples=10, deadline=None)
    @given(
        seed=st.integers(0, 2**31),
        d=st.integers(8, 96),
        batch=st.integers(1, 24),
        dense=st.booleans(),
    )
    def test_bit_identical_across_worker_counts(self, seed, d, batch, dense):
        channel, counts = _em_problem(seed, d, batch, dense=dense)
        results = [
            batched_expectation_maximization(
                channel, counts, backend=make_backend(f"threaded:{w}")
            )
            for w in WORKER_COUNTS
        ]
        for other in results[1:]:
            assert np.array_equal(other.estimates, results[0].estimates)
            assert np.array_equal(other.iterations, results[0].iterations)
            assert np.array_equal(
                other.log_likelihood, results[0].log_likelihood
            )

    def test_olh_counts_identical_across_worker_counts(self):
        rng = np.random.default_rng(11)
        oracle = OLH(epsilon=1.0, d=32)
        reports = oracle.privatize(rng.integers(0, 32, size=10_000), rng=rng)
        with use_backend(NumpyBackend()):
            reference = oracle.support_counts(reports)
        for w in WORKER_COUNTS:
            with use_backend(ThreadedBackend(w, olh_chunk_size=512)):
                counts = oracle.support_counts(reports)
            assert np.array_equal(counts, reference)

    def test_olh_chunk_size_does_not_change_counts(self):
        rng = np.random.default_rng(12)
        oracle = OLH(epsilon=1.0, d=16)
        reports = oracle.privatize(rng.integers(0, 16, size=3_000), rng=rng)
        reference = oracle.support_counts(reports, chunk_size=1024)
        for chunk in (1, 7, 100, 10_000):
            assert np.array_equal(
                oracle.support_counts(reports, chunk_size=chunk), reference
            )
        with pytest.raises(ValueError, match="chunk_size"):
            oracle.support_counts(reports, chunk_size=0)

    def test_numba_olh_counts_exact(self):
        numba = _numba_or_skip()
        rng = np.random.default_rng(13)
        oracle = OLH(epsilon=1.0, d=24)
        reports = oracle.privatize(rng.integers(0, 24, size=2_000), rng=rng)
        reference = oracle.support_counts(reports)
        with use_backend(numba):
            counts = oracle.support_counts(reports)
        assert np.array_equal(counts, reference)


# -- frame decode + solve scheduler -------------------------------------------


class TestParallelPlumbing:
    def test_frame_decode_identical_through_threaded_backend(self):
        rng = np.random.default_rng(21)
        frame = encode_frame_blocks(
            "r1",
            [(f"a{i}", "float", rng.random(500)) for i in range(5)],
        )
        round_id, reference = decode_frame_grouped(frame)
        assert round_id == "r1"
        with use_backend(ThreadedBackend(4)):
            _, groups = decode_frame_grouped(frame)
        assert list(groups) == list(reference)
        for attr in reference:
            assert np.array_equal(groups[attr].reports, reference[attr].reports)

    def test_map_ordered_propagates_worker_exceptions(self):
        # Frame-block materialization and multi-round solves run through
        # map_ordered: an exception in any item must surface, not vanish
        # into the pool.
        def explode(v):
            if v == 2:
                raise ValueError("boom in worker")
            return v

        bk = make_backend("threaded:2")
        with pytest.raises(ValueError, match="boom in worker"):
            bk.map_ordered(explode, [1, 2, 3])

    def test_estimate_rounds_matches_sequential(self):
        rng = np.random.default_rng(23)
        servers = {}
        for name in ("alpha", "beta", "gamma"):
            server = CollectionServer("r1", "sw-ems", 1.0, 64, attr=name)
            server.ingest_reports(
                server.privatize(rng.random(2_000), rng=rng)
            )
            servers[name] = server
        with use_backend(NumpyBackend()):
            sequential = {
                name: server.estimate() for name, server in servers.items()
            }
        for server in servers.values():  # drop cached posteriors
            server._cached = None
            server._cached_key = None
        with use_backend(ThreadedBackend(3)):
            concurrent = estimate_rounds(servers)
        assert list(concurrent) == list(sequential)
        for name in sequential:
            np.testing.assert_allclose(
                concurrent[name], sequential[name], atol=ATOL, rtol=0.0
            )

    def test_estimate_rounds_propagates_empty_round(self):
        from repro.api.errors import EmptyAggregateError

        servers = {"value": CollectionServer("r1", "sw-ems", 1.0, 32)}
        with use_backend(ThreadedBackend(2)):
            with pytest.raises(EmptyAggregateError, match="no reports ingested"):
                estimate_rounds(servers)


# -- registry + process-wide state --------------------------------------------


class TestBackendRegistry:
    def test_available_backends(self):
        assert available_backends() == ("numba", "numpy", "threaded")

    def test_named_instances_are_memoized(self):
        assert make_backend("threaded:4") is make_backend("threaded:4")
        assert make_backend("numpy") is make_backend("numpy")
        assert make_backend("threaded:4").workers == 4

    def test_instance_passthrough(self):
        instance = ThreadedBackend(2)
        assert make_backend(instance) is instance
        assert resolve_backend(instance) is instance

    def test_unknown_and_malformed_specs_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            make_backend("cuda")
        with pytest.raises(ValueError, match="suffix"):
            make_backend("numpy:4")
        with pytest.raises(ValueError, match="integer"):
            make_backend("threaded:lots")

    def test_threaded_validates_workers(self):
        with pytest.raises(ValueError, match="workers"):
            ThreadedBackend(0)
        with pytest.raises(ValueError, match="column_chunk"):
            ThreadedBackend(1, column_chunk=0)

    def test_effective_cpu_count_positive(self):
        assert effective_cpu_count() >= 1

    def test_set_backend_returns_previous(self):
        original = backend()
        try:
            previous = set_backend("threaded:2")
            assert previous is original
            assert backend() is make_backend("threaded:2")
        finally:
            set_backend(original)
        assert backend() is original

    def test_use_backend_scopes_and_restores(self):
        original = backend()
        with use_backend("threaded:2") as active:
            assert backend() is active
            assert active.workers == 2
        assert backend() is original
        # ...including when the body raises.
        with pytest.raises(RuntimeError, match="boom"):
            with use_backend("threaded:2"):
                raise RuntimeError("boom")
        assert backend() is original

    def test_resolve_backend_none_is_active(self):
        with use_backend("threaded:2") as active:
            assert resolve_backend(None) is active

    def test_env_var_selects_initial_backend(self):
        chosen = _initial_backend({BACKEND_ENV_VAR: "threaded:3"})
        assert chosen.name == "threaded"
        assert chosen.workers == 3
        assert _initial_backend({}).name == "numpy"

    def test_env_var_falls_back_with_warning(self):
        with pytest.warns(RuntimeWarning, match="unusable"):
            chosen = _initial_backend({BACKEND_ENV_VAR: "not-a-backend"})
        assert chosen.name == "numpy"

    def test_threaded_close_shuts_pool_down(self):
        bk = ThreadedBackend(2)
        assert bk.map_ordered(lambda v: v + 1, [1, 2, 3]) == [2, 3, 4]
        bk.close()
        # The pool rebuilds lazily after close.
        assert bk.map_ordered(lambda v: v * 2, [1, 2]) == [2, 4]
        bk.close()

    def test_describe_is_json_serializable(self):
        import json

        for bk in (NumpyBackend(), ThreadedBackend(2)):
            info = json.loads(json.dumps(bk.describe()))
            assert info["name"] == bk.name
            assert info["workers"] == bk.workers


class TestEMConfigBackend:
    def test_round_trip_preserves_backend(self):
        config = EMConfig(backend="threaded:2")
        assert EMConfig(**config.to_dict()) == config
        assert EMConfig(**EMConfig().to_dict()).backend is None

    def test_run_many_uses_configured_backend(self):
        channel, counts = _em_problem(31, 48, 4, dense=True)
        reference = EMConfig().run_many(channel, counts, 1.0)
        threaded = EMConfig(backend="threaded:2").run_many(channel, counts, 1.0)
        np.testing.assert_allclose(
            threaded.estimates, reference.estimates, atol=ATOL, rtol=0.0
        )
        assert np.array_equal(threaded.iterations, reference.iterations)

    def test_unknown_backend_fails_at_solve_time(self):
        config = EMConfig(backend="cuda")  # constructible: lazy validation
        channel, counts = _em_problem(32, 16, 2, dense=True)
        with pytest.raises(ValueError, match="unknown backend"):
            config.run_many(channel, counts, 1.0)

    def test_estimator_state_round_trips_backend(self):
        from repro.api.base import Estimator
        from repro.core.pipeline import SWEstimator

        est = SWEstimator(1.0, 32, backend="threaded:2")
        rebuilt = Estimator.from_state(est.to_state())
        assert isinstance(rebuilt, SWEstimator)
        assert rebuilt.config.backend == "threaded:2"
