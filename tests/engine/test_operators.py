"""Structured channel operators: exactness, solver equivalence, plumbing.

The load-bearing guarantees:

* operator ``matvec``/``rmatvec``/``to_dense`` match the dense transition
  matrix to float rounding for *random* ``(epsilon, b, d, d_out, B)``
  (hypothesis-driven);
* full EM/EMS solves through an operator reproduce the dense path's
  per-column iteration counts and estimates (including ``x0`` warm starts
  and smoothing);
* the dense fallback — raw ndarray or :class:`DenseChannel` — is
  bitwise-identical to the historical solver output;
* estimators request operators by default and honor the dense override.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.api.config import EMConfig
from repro.binning.cfo_binning import CFOBinning
from repro.core.pipeline import DiscreteSWEstimator, SWEstimator
from repro.core.smoothing import binomial_kernel
from repro.core.square_wave import DiscreteSquareWave, SquareWave
from repro.engine.cache import cached_channel_operator, clear_caches
from repro.engine.operators import (
    ChannelOperator,
    DenseChannel,
    UniformPlusBandedChannel,
    UniformPlusToeplitzChannel,
    channel_mode,
    dense_channels,
    set_channel_mode,
)
from repro.engine.solver import batched_expectation_maximization
from repro.multidim.marginals import MultiAttributeSW

# Matvec outputs are compared on probability-scale inputs, where the
# operator and the dense matmul agree to accumulated float rounding.
ATOL = 1e-12


def _random_probs(rng, d, batch):
    x = rng.random((d, batch)) + 1e-3
    return x / x.sum(axis=0)


# -- exactness against the dense matrix ---------------------------------------


class TestContinuousOperator:
    @given(
        epsilon=st.floats(0.05, 5.0),
        b=st.one_of(st.none(), st.floats(0.01, 0.5)),
        d=st.integers(2, 180),
        d_out=st.integers(2, 260),
        batch=st.integers(1, 4),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=60)
    def test_matches_dense(self, epsilon, b, d, d_out, batch, seed):
        sw = SquareWave(epsilon, b=b)
        dense = np.asarray(sw.transition_matrix(d, d_out))
        op = UniformPlusToeplitzChannel(sw.p, sw.q, sw.b, d, d_out)
        assert op.shape == dense.shape
        rng = np.random.default_rng(seed)
        x = _random_probs(rng, d, batch)
        y = _random_probs(rng, d_out, batch)
        np.testing.assert_allclose(op.matvec(x), dense @ x, atol=ATOL)
        np.testing.assert_allclose(op.rmatvec(y), dense.T @ y, atol=ATOL)
        np.testing.assert_allclose(op.to_dense(), dense, atol=ATOL)
        np.testing.assert_allclose(op.column_sums(), 1.0, atol=1e-9)

    def test_one_dimensional_vectors(self):
        sw = SquareWave(1.0)
        dense = np.asarray(sw.transition_matrix(40, 56))
        op = UniformPlusToeplitzChannel(sw.p, sw.q, sw.b, 40, 56)
        x = np.linspace(0.1, 1.0, 40)
        y = np.linspace(0.1, 1.0, 56)
        assert op.matvec(x).shape == (56,)
        assert op.rmatvec(y).shape == (40,)
        np.testing.assert_allclose(op.matvec(x), dense @ x, atol=ATOL)
        np.testing.assert_allclose(op.rmatvec(y), dense.T @ y, atol=ATOL)

    def test_coarse_output_grid_falls_back_to_dense(self):
        # d_out tiny relative to the wave: ramp windows cover most of the
        # domain, so the mechanism hook declines and the cache serves a
        # DenseChannel instead.
        sw = SquareWave(1.0)
        assert sw.channel_operator(512, 2) is None
        clear_caches()
        op = cached_channel_operator(sw, 512, 2)
        assert isinstance(op, DenseChannel)

    def test_window_width_is_small(self):
        sw = SquareWave(1.0)
        op = UniformPlusToeplitzChannel(sw.p, sw.q, sw.b, 1024, 1024)
        assert op.window_width <= 8


class TestDiscreteOperator:
    @given(
        epsilon=st.floats(0.05, 5.0),
        d=st.integers(2, 300),
        b=st.one_of(st.none(), st.integers(0, 40)),
        batch=st.integers(1, 4),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=60)
    def test_matches_dense(self, epsilon, d, b, batch, seed):
        mech = DiscreteSquareWave(epsilon, d, b=b)
        dense = np.asarray(mech.transition_matrix())
        op = mech.channel_operator()
        assert isinstance(op, UniformPlusBandedChannel)
        assert op.shape == dense.shape
        rng = np.random.default_rng(seed)
        x = _random_probs(rng, d, batch)
        y = _random_probs(rng, mech.d_out, batch)
        np.testing.assert_allclose(op.matvec(x), dense @ x, atol=ATOL)
        np.testing.assert_allclose(op.rmatvec(y), dense.T @ y, atol=ATOL)
        np.testing.assert_array_equal(op.to_dense(), dense)

    def test_validation(self):
        with pytest.raises(ValueError, match="nondecreasing"):
            UniformPlusBandedChannel(
                4, [2, 0], [3, 1], inside=0.5, outside=0.1
            )
        with pytest.raises(ValueError, match="lo <= hi"):
            UniformPlusBandedChannel(4, [2], [1], inside=0.5, outside=0.1)


class TestCFOOperator:
    def test_matches_dense_matrix(self):
        est = CFOBinning(1.0, d=64, bins=8, em=EMConfig())
        op = est.channel
        assert isinstance(op, UniformPlusBandedChannel)
        np.testing.assert_allclose(
            op.to_dense(), np.asarray(est.transition_matrix), atol=0
        )
        np.testing.assert_allclose(op.column_sums(), 1.0, atol=1e-12)


# -- solver equivalence: operator path vs dense path --------------------------


def _sw_problem(epsilon, d, d_out, batch, seed, n=4000):
    sw = SquareWave(epsilon)
    dense = np.asarray(sw.transition_matrix(d, d_out))
    op = UniformPlusToeplitzChannel(sw.p, sw.q, sw.b, d, d_out)
    rng = np.random.default_rng(seed)
    counts = np.stack(
        [
            rng.multinomial(n, dense @ rng.dirichlet(np.ones(d))).astype(float)
            for _ in range(batch)
        ],
        axis=1,
    )
    return dense, op, counts


class TestSolverEquivalence:
    @given(
        epsilon=st.floats(0.2, 3.0),
        d=st.integers(4, 48),
        batch=st.integers(1, 5),
        smoothing=st.booleans(),
        warm=st.booleans(),
        seed=st.integers(0, 2**31),
    )
    @settings(max_examples=25)
    def test_em_runs_match_dense_path(
        self, epsilon, d, batch, smoothing, warm, seed
    ):
        dense, op, counts = _sw_problem(epsilon, d, d + 7, batch, seed)
        kernel = binomial_kernel(2) if smoothing else None
        x0 = None
        if warm:
            x0 = np.random.default_rng(seed + 1).dirichlet(
                np.ones(d), size=batch
            ).T
        kwargs = dict(
            tol=1e-3, max_iter=800, smoothing_kernel=kernel, x0=x0
        )
        ref = batched_expectation_maximization(dense, counts, **kwargs)
        got = batched_expectation_maximization(op, counts, **kwargs)
        np.testing.assert_array_equal(got.iterations, ref.iterations)
        np.testing.assert_array_equal(got.converged, ref.converged)
        np.testing.assert_allclose(got.estimates, ref.estimates, atol=1e-9)
        np.testing.assert_allclose(
            got.log_likelihood, ref.log_likelihood, rtol=1e-12, atol=1e-7
        )
        for hist_got, hist_ref in zip(got.histories, ref.histories, strict=True):
            assert hist_got.shape == hist_ref.shape
            np.testing.assert_allclose(hist_got, hist_ref, rtol=1e-12, atol=1e-7)

    def test_dense_channel_is_bitwise_identical_to_raw_matrix(self):
        dense, _, counts = _sw_problem(1.0, 32, 32, 6, seed=7)
        for kernel in (None, binomial_kernel(2)):
            ref = batched_expectation_maximization(
                dense, counts, tol=1e-4, smoothing_kernel=kernel
            )
            got = batched_expectation_maximization(
                DenseChannel(dense), counts, tol=1e-4, smoothing_kernel=kernel
            )
            np.testing.assert_array_equal(got.estimates, ref.estimates)
            np.testing.assert_array_equal(got.iterations, ref.iterations)
            np.testing.assert_array_equal(
                got.log_likelihood, ref.log_likelihood
            )
            for hist_got, hist_ref in zip(got.histories, ref.histories, strict=True):
                np.testing.assert_array_equal(hist_got, hist_ref)

    def test_operator_column_validation(self):
        op = UniformPlusBandedChannel(
            3, [0, 1, 2], [1, 2, 3], inside=0.9, outside=0.3
        )
        with pytest.raises(ValueError, match="columns must sum to 1"):
            batched_expectation_maximization(op, np.ones((3, 1)))
        result = batched_expectation_maximization(
            op, np.ones((3, 1)), validate_matrix=False
        )
        assert result.batch_size == 1

    def test_history_buffer_growth_preserves_trajectories(self):
        # More iterations than the initial history chunk (128): the buffer
        # must grow without losing earlier entries.
        dense, op, counts = _sw_problem(0.3, 24, 24, 2, seed=3, n=100_000)
        kwargs = dict(tol=-1.0, max_iter=150)
        ref = batched_expectation_maximization(dense, counts, **kwargs)
        got = batched_expectation_maximization(op, counts, **kwargs)
        assert all(len(h) == 150 for h in got.histories)
        for hist_got, hist_ref in zip(got.histories, ref.histories, strict=True):
            np.testing.assert_allclose(hist_got, hist_ref, rtol=1e-12, atol=1e-7)


# -- estimator plumbing -------------------------------------------------------


class TestEstimatorPlumbing:
    def test_default_mode_is_structured(self):
        assert channel_mode() == "structured"

    def test_wave_estimator_requests_operator(self):
        est = SWEstimator(1.0, d=64)
        assert isinstance(est.channel, UniformPlusToeplitzChannel)
        with dense_channels():
            assert isinstance(est.channel, np.ndarray)

    def test_discrete_estimator_requests_operator(self):
        est = DiscreteSWEstimator(1.0, d=32)
        assert isinstance(est.channel, UniformPlusBandedChannel)

    def test_operator_is_shared_through_cache(self):
        clear_caches()
        first = SWEstimator(1.0, d=48).channel
        second = SWEstimator(1.0, d=48).channel
        assert first is second

    def test_set_channel_mode_round_trip(self):
        previous = set_channel_mode("dense")
        try:
            assert channel_mode() == "dense"
            assert previous == "structured"
        finally:
            set_channel_mode(previous)
        with pytest.raises(ValueError, match="mode must be one of"):
            set_channel_mode("sparse")

    @pytest.mark.parametrize("postprocess", ["em", "ems"])
    def test_wave_estimate_matches_dense_mode(self, postprocess):
        values = np.random.default_rng(0).beta(4, 2, 8000)
        est = SWEstimator(1.0, d=64, postprocess=postprocess)
        est.partial_fit(values, rng=np.random.default_rng(1))
        structured = est.estimate()
        structured_iters = est.result_.iterations
        with dense_channels():
            dense = est.estimate()
        assert est.result_.iterations == structured_iters
        np.testing.assert_allclose(structured, dense, atol=1e-9)

    def test_discrete_estimate_matches_dense_mode(self):
        values = np.random.default_rng(2).random(6000)
        est = DiscreteSWEstimator(1.0, d=48)
        est.partial_fit(values, rng=np.random.default_rng(3))
        structured = est.estimate()
        with dense_channels():
            dense = est.estimate()
        np.testing.assert_allclose(structured, dense, atol=1e-9)

    def test_cfo_em_estimate_matches_dense_mode(self):
        values = np.random.default_rng(4).beta(2, 5, 6000)
        est = CFOBinning(1.0, d=64, bins=16, em=EMConfig())
        est.partial_fit(values, rng=np.random.default_rng(5))
        structured = est.estimate()
        with dense_channels():
            dense = est.estimate()
        np.testing.assert_allclose(structured, dense, atol=1e-9)

    def test_marginals_batched_solve_uses_operator(self):
        values = np.random.default_rng(6).random((5000, 2))
        est = MultiAttributeSW(1.0, n_attributes=2, d=32)
        est.partial_fit(values, rng=np.random.default_rng(7))
        structured = est.estimate()
        iters = [e.result_.iterations for e in est.estimators]
        with dense_channels():
            dense = est.estimate()
        assert [e.result_.iterations for e in est.estimators] == iters
        for s, m in zip(structured, dense, strict=True):
            np.testing.assert_allclose(s, m, atol=1e-9)

    def test_warm_start_through_operator(self):
        # The CollectionServer x0 path: a warm start near the posterior
        # must converge in fewer iterations on the structured channel too.
        values = np.random.default_rng(8).beta(5, 2, 20_000)
        est = SWEstimator(1.0, d=64)
        est.partial_fit(values, rng=np.random.default_rng(9))
        posterior = est.estimate()
        cold_iters = est.result_.iterations
        est.partial_fit(values[:500], rng=np.random.default_rng(10))
        mixed = 0.999999 * posterior + 1e-6 / posterior.size
        est.estimate(x0=mixed)
        assert est.result_.iterations < cold_iters

    def test_operator_protocol_shape_views(self):
        op = SWEstimator(1.0, d=16, d_out=24).channel
        assert isinstance(op, ChannelOperator)
        assert (op.d_out, op.d) == (24, 16)
