"""Equivalence tests: batched EM/EMS vs the sequential single-problem API."""

import numpy as np
import pytest

from repro.api.config import EMConfig
from repro.core.em import expectation_maximization
from repro.core.smoothing import binomial_kernel
from repro.core.square_wave import SquareWave
from repro.engine.solver import batched_expectation_maximization


def _problem_batch(d=24, batch=9, n=3000, seed=0):
    """B multinomial count vectors drawn against one SW channel matrix."""
    rng = np.random.default_rng(seed)
    matrix = SquareWave(1.0).transition_matrix(d, d)
    counts = np.stack(
        [
            rng.multinomial(n, matrix @ rng.dirichlet(np.ones(d))).astype(float)
            for _ in range(batch)
        ],
        axis=1,
    )
    return matrix, counts


def _assert_matches_sequential(matrix, counts, **kwargs):
    batch_result = batched_expectation_maximization(matrix, counts, **kwargs)
    for j in range(counts.shape[1]):
        seq = expectation_maximization(matrix, counts[:, j], **kwargs)
        col = batch_result.column(j)
        assert col.iterations == seq.iterations, f"column {j} iteration count"
        assert col.converged == seq.converged, f"column {j} convergence flag"
        np.testing.assert_allclose(col.estimate, seq.estimate, rtol=0, atol=1e-12)
        np.testing.assert_allclose(
            col.history, seq.history, rtol=1e-12, atol=1e-9
        )
        assert col.log_likelihood == pytest.approx(seq.log_likelihood)
    return batch_result


class TestBatchedMatchesSequential:
    def test_plain_em(self):
        matrix, counts = _problem_batch(seed=1)
        _assert_matches_sequential(matrix, counts, tol=1e-4, max_iter=500)

    def test_ems(self):
        matrix, counts = _problem_batch(seed=2)
        result = _assert_matches_sequential(
            matrix,
            counts,
            tol=1e-3,
            max_iter=500,
            smoothing_kernel=binomial_kernel(2),
        )
        # EMS output must still be a distribution per column.
        np.testing.assert_allclose(result.estimates.sum(axis=0), 1.0)
        assert (result.estimates >= 0).all()

    def test_wide_smoothing_kernel(self):
        matrix, counts = _problem_batch(seed=3)
        _assert_matches_sequential(
            matrix,
            counts,
            tol=1e-3,
            max_iter=300,
            smoothing_kernel=binomial_kernel(4),
        )

    def test_columns_converge_independently(self):
        # A near-uniform column converges quickly; a spiky one slowly. The
        # mask must keep iterating the slow column after the fast one stops.
        d = 16
        matrix = SquareWave(0.5).transition_matrix(d, d)
        easy = matrix @ np.full(d, 1.0 / d) * 10_000
        spike = np.zeros(d)
        spike[3] = 1.0
        hard = matrix @ spike * 10_000
        counts = np.stack([easy, hard], axis=1)
        result = batched_expectation_maximization(
            matrix, counts, tol=1e-4, max_iter=20_000
        )
        assert result.converged.all()
        assert result.iterations[0] < result.iterations[1]
        assert len(result.histories[0]) == result.iterations[0]
        assert len(result.histories[1]) == result.iterations[1]

    def test_max_iter_cap_flags_unconverged_columns(self):
        matrix, counts = _problem_batch(batch=3, seed=4)
        result = batched_expectation_maximization(
            matrix, counts, tol=-np.inf, max_iter=7
        )
        assert (~result.converged).all()
        assert (result.iterations == 7).all()

    def test_single_column_equals_sequential_api(self):
        matrix, counts = _problem_batch(batch=1, seed=5)
        seq = expectation_maximization(matrix, counts[:, 0], tol=1e-4)
        col = batched_expectation_maximization(matrix, counts, tol=1e-4).column(0)
        np.testing.assert_array_equal(col.estimate, seq.estimate)
        assert col.iterations == seq.iterations

    def test_iteration_over_batch(self):
        matrix, counts = _problem_batch(batch=4, seed=6)
        result = batched_expectation_maximization(matrix, counts, tol=1e-3)
        assert len(list(result)) == 4


class TestBatchedValidation:
    def test_rejects_1d_counts(self):
        with pytest.raises(ValueError, match="counts must have shape"):
            batched_expectation_maximization(np.eye(4), np.ones(4))

    def test_rejects_zero_column(self):
        counts = np.ones((3, 2))
        counts[:, 1] = 0.0
        with pytest.raises(ValueError, match="at least one report"):
            batched_expectation_maximization(np.eye(3), counts)

    def test_rejects_negative_counts(self):
        counts = np.ones((3, 2))
        counts[0, 0] = -1.0
        with pytest.raises(ValueError, match="non-negative"):
            batched_expectation_maximization(np.eye(3), counts)

    def test_rejects_empty_batch(self):
        with pytest.raises(ValueError, match="at least one problem column"):
            batched_expectation_maximization(np.eye(3), np.ones((3, 0)))

    def test_rejects_bad_matrix_unless_prevalidated(self):
        counts = np.ones((3, 2))
        with pytest.raises(ValueError, match="columns must sum to 1"):
            batched_expectation_maximization(np.eye(3) * 2.0, counts)
        # validate_matrix=False trusts the caller (the engine cache path).
        result = batched_expectation_maximization(
            np.eye(3), counts, validate_matrix=False
        )
        assert result.batch_size == 2

    def test_rejects_bad_x0(self):
        counts = np.ones((3, 2))
        with pytest.raises(ValueError, match="x0"):
            batched_expectation_maximization(
                np.eye(3), counts, x0=np.array([1.0, -1.0, 1.0])
            )

    def test_per_column_x0(self):
        matrix, counts = _problem_batch(batch=2, seed=7)
        d = matrix.shape[1]
        x0 = np.random.default_rng(0).dirichlet(np.ones(d), size=2).T
        result = batched_expectation_maximization(
            matrix, counts, tol=1e-4, x0=x0
        )
        for j in range(2):
            seq = expectation_maximization(
                matrix, counts[:, j], tol=1e-4, x0=x0[:, j]
            )
            assert result.column(j).iterations == seq.iterations
            np.testing.assert_allclose(
                result.column(j).estimate, seq.estimate, atol=1e-12
            )


class TestEMConfigRunMany:
    def test_run_many_matches_run(self):
        matrix, counts = _problem_batch(batch=5, seed=8)
        config = EMConfig(postprocess="ems")
        batch = config.run_many(matrix, counts, epsilon=1.0)
        for j in range(5):
            single = config.run(matrix, counts[:, j], epsilon=1.0)
            assert batch.column(j).iterations == single.iterations
            np.testing.assert_allclose(
                batch.column(j).estimate, single.estimate, atol=1e-12
            )

    def test_marginals_batched_path_matches_per_attribute(self):
        from repro.multidim.marginals import MultiAttributeSW

        values = np.random.default_rng(3).random((6000, 3))
        est = MultiAttributeSW(1.0, n_attributes=3, d=16)
        est.partial_fit(values, rng=np.random.default_rng(4))
        marginals = est.estimate()
        assert len(marginals) == 3
        for attribute, marginal in zip(est.estimators, marginals, strict=True):
            # Re-solve the attribute alone through the sequential API.
            solo = attribute.config.run(
                attribute.transition_matrix,
                attribute._counts,
                attribute.epsilon,
                validated=True,
            )
            np.testing.assert_allclose(marginal, solo.estimate, atol=1e-12)
            assert attribute.result_.iterations == solo.iterations
