"""Warm-start (x0) behaviour of the EM solver through EMConfig."""

import numpy as np
import pytest

from repro.api.config import EMConfig
from repro.core.square_wave import SquareWave
from repro.engine.solver import batched_expectation_maximization


@pytest.fixture(scope="module")
def problem():
    d = 48
    rng = np.random.default_rng(0)
    matrix = np.asarray(SquareWave(1.0).transition_matrix(d, d))
    truth = rng.dirichlet(np.ones(d) * 2.0)
    counts = rng.multinomial(60_000, matrix @ truth).astype(np.float64)
    return matrix, counts


class TestConfigPlumbing:
    def test_run_forwards_x0(self, problem):
        matrix, counts = problem
        config = EMConfig(postprocess="ems")
        cold = config.run(matrix, counts, 1.0)
        warm = config.run(matrix, counts, 1.0, x0=cold.estimate)
        assert warm.iterations < cold.iterations
        np.testing.assert_allclose(warm.estimate, cold.estimate, atol=2e-3)

    def test_run_many_forwards_x0(self, problem):
        matrix, counts = problem
        config = EMConfig(postprocess="em")
        stacked = np.stack([counts, counts * 2.0], axis=1)
        cold = config.run_many(matrix, stacked, 1.0)
        warm = config.run_many(matrix, stacked, 1.0, x0=cold.estimates)
        assert (warm.iterations <= cold.iterations).all()
        assert warm.iterations.sum() < cold.iterations.sum()

    def test_default_is_uniform_prior(self, problem):
        """x0=None keeps the historical behaviour bit for bit."""
        matrix, counts = problem
        config = EMConfig(postprocess="ems")
        np.testing.assert_array_equal(
            config.run(matrix, counts, 1.0).estimate,
            config.run(matrix, counts, 1.0, x0=None).estimate,
        )

    def test_shared_x0_matches_solver(self, problem):
        matrix, counts = problem
        config = EMConfig(postprocess="ems")
        start = np.full(matrix.shape[1], 1.0 / matrix.shape[1])
        via_config = config.run(matrix, counts, 1.0, x0=start)
        via_solver = batched_expectation_maximization(
            matrix,
            counts[:, None],
            tol=config.resolve_tolerance(1.0),
            max_iter=config.max_iter,
            smoothing_kernel=config.kernel(),
            x0=start,
        ).column(0)
        np.testing.assert_array_equal(via_config.estimate, via_solver.estimate)

    def test_invalid_x0_rejected(self, problem):
        matrix, counts = problem
        config = EMConfig()
        with pytest.raises(ValueError, match="x0"):
            config.run(matrix, counts, 1.0, x0=-np.ones(matrix.shape[1]))


class TestWarmStartSemantics:
    def test_perturbed_start_reaches_equivalent_optimum(self, problem):
        """EM from a nearby (strictly positive) start reaches a solution at
        least as likely as the cold one, and statistically equivalent.

        Pointwise identity is too strong at finite tolerance — the
        likelihood surface is flat near the MLE — so the contract is
        likelihood-equivalence plus a small Wasserstein distance.
        """
        from repro.metrics.distances import wasserstein_distance

        matrix, counts = problem
        config = EMConfig(postprocess="em", tol=1e-8)
        cold = config.run(matrix, counts, 1.0)
        mixed = 0.9 * cold.estimate + 0.1 / cold.estimate.size
        warm = config.run(matrix, counts, 1.0, x0=mixed)
        assert warm.log_likelihood >= cold.log_likelihood - 1e-4 * abs(
            cold.log_likelihood
        )
        assert wasserstein_distance(cold.estimate, warm.estimate) < 5e-3

    def test_warm_start_monotone_likelihood(self, problem):
        matrix, counts = problem
        config = EMConfig(postprocess="em")
        cold = config.run(matrix, counts, 1.0)
        warm = config.run(matrix, counts, 1.0, x0=cold.estimate)
        assert warm.log_likelihood >= cold.log_likelihood - 1e-6
