"""Unit tests for the process-wide transition-matrix cache."""

import numpy as np
import pytest

from repro.binning.cfo_binning import CFOBinning
from repro.core.pipeline import DiscreteSWEstimator, SWEstimator
from repro.core.square_wave import DiscreteSquareWave, SquareWave
from repro.engine.cache import (
    cached_matrix,
    cached_object,
    cached_transition_matrix,
    clear_caches,
    matrix_cache_info,
    mechanism_cache_key,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_caches()
    yield
    clear_caches()


class TestCachedTransitionMatrix:
    def test_matches_direct_build(self):
        sw = SquareWave(1.0)
        np.testing.assert_array_equal(
            cached_transition_matrix(sw, 32, 32), sw.transition_matrix(32, 32)
        )

    def test_identical_params_share_one_array(self):
        a = cached_transition_matrix(SquareWave(1.0), 64, 64)
        b = cached_transition_matrix(SquareWave(1.0), 64, 64)
        assert a is b

    def test_different_params_get_different_entries(self):
        a = cached_transition_matrix(SquareWave(1.0), 32, 32)
        b = cached_transition_matrix(SquareWave(2.0), 32, 32)
        c = cached_transition_matrix(SquareWave(1.0), 32, 16)
        assert a is not b and a is not c

    def test_discrete_mechanism_keyed_on_params_only(self):
        a = cached_transition_matrix(DiscreteSquareWave(1.0, 32))
        b = cached_transition_matrix(DiscreteSquareWave(1.0, 32))
        assert a is b
        np.testing.assert_array_equal(a, DiscreteSquareWave(1.0, 32).transition_matrix())

    def test_cached_matrix_is_read_only(self):
        matrix = cached_transition_matrix(SquareWave(1.0), 16, 16)
        assert not matrix.flags.writeable
        with pytest.raises(ValueError, match="read-only"):
            matrix[0, 0] = 0.5

    def test_hit_miss_accounting(self):
        sw = SquareWave(1.5)
        cached_transition_matrix(sw, 16, 16)
        cached_transition_matrix(sw, 16, 16)
        info = matrix_cache_info()
        assert info.misses == 1
        assert info.hits == 1
        assert info.entries == 1
        assert info.nbytes == 16 * 16 * 8

    def test_clear_caches_resets(self):
        cached_transition_matrix(SquareWave(1.0), 16, 16)
        clear_caches()
        info = matrix_cache_info()
        assert (info.hits, info.misses, info.entries, info.nbytes) == (0, 0, 0, 0)

    def test_lru_eviction_bounds_memory(self):
        from repro.engine.cache import set_matrix_cache_limit

        # Budget fits two 16x16 float64 matrices (2 KiB each), not three.
        set_matrix_cache_limit(2 * 16 * 16 * 8)
        try:
            a = cached_transition_matrix(SquareWave(1.0), 16, 16)
            cached_transition_matrix(SquareWave(2.0), 16, 16)
            cached_transition_matrix(SquareWave(1.0), 16, 16)  # refresh a
            cached_transition_matrix(SquareWave(3.0), 16, 16)  # evicts eps=2
            info = matrix_cache_info()
            assert info.entries == 2
            assert info.nbytes <= 2 * 16 * 16 * 8
            # eps=1 was most recently used, so it survived and still hits.
            assert cached_transition_matrix(SquareWave(1.0), 16, 16) is a
            # eps=2 was evicted: fetching it again is a rebuild (miss).
            before = matrix_cache_info().misses
            cached_transition_matrix(SquareWave(2.0), 16, 16)
            assert matrix_cache_info().misses == before + 1
        finally:
            set_matrix_cache_limit(1 << 30)

    def test_single_oversized_entry_still_cached(self):
        from repro.engine.cache import set_matrix_cache_limit

        set_matrix_cache_limit(1)  # nothing fits, but the newest must stay
        try:
            a = cached_transition_matrix(SquareWave(1.0), 16, 16)
            assert cached_transition_matrix(SquareWave(1.0), 16, 16) is a
            assert matrix_cache_info().entries == 1
        finally:
            set_matrix_cache_limit(1 << 30)


class TestCachedMatrixValidation:
    def test_rejects_non_stochastic_columns(self):
        with pytest.raises(ValueError, match="columns must sum to 1"):
            cached_matrix(("bad",), lambda: np.eye(3) * 2.0)

    def test_rejects_non_2d(self):
        with pytest.raises(ValueError, match="2-d"):
            cached_matrix(("bad-1d",), lambda: np.ones(3))

    def test_validation_can_be_disabled(self):
        out = cached_matrix(
            ("weights",), lambda: np.eye(2) * 2.0, column_stochastic=False
        )
        assert not out.flags.writeable


class TestMechanismCacheKey:
    def test_key_is_hashable_and_param_sensitive(self):
        k1 = mechanism_cache_key(SquareWave(1.0, b=0.2))
        k2 = mechanism_cache_key(SquareWave(1.0, b=0.3))
        assert hash(k1) != hash(k2) or k1 != k2
        assert k1 == mechanism_cache_key(SquareWave(1.0, b=0.2))


class TestEstimatorsUseSharedCache:
    def test_sw_estimators_share_matrix(self):
        a = SWEstimator(1.0, d=32)
        b = SWEstimator(1.0, d=32)
        assert a.transition_matrix is b.transition_matrix
        assert not a.transition_matrix.flags.writeable

    def test_discrete_sw_estimator_matrix_cached(self):
        a = DiscreteSWEstimator(1.0, d=32)
        b = DiscreteSWEstimator(1.0, d=32)
        assert a.transition_matrix is b.transition_matrix

    def test_cfo_em_estimators_share_matrix(self):
        from repro.api.config import EMConfig

        a = CFOBinning(1.0, d=64, bins=16, em=EMConfig())
        b = CFOBinning(1.0, d=64, bins=16, em=EMConfig())
        assert a.transition_matrix is b.transition_matrix
        with pytest.raises(ValueError, match="read-only"):
            a.transition_matrix[0, 0] = 1.0

    def test_estimates_identical_before_and_after_caching(self, rng):
        # Same seed twice: the second run hits the cache, results must match.
        values = np.random.default_rng(5).beta(2, 5, 4000)
        first = SWEstimator(1.0, d=32).fit(values, rng=np.random.default_rng(9))
        second = SWEstimator(1.0, d=32).fit(values, rng=np.random.default_rng(9))
        np.testing.assert_array_equal(first, second)


class TestCachedObject:
    def test_builds_once(self):
        calls = []

        def build():
            calls.append(1)
            return object()

        a = cached_object(("thing", 1), build)
        b = cached_object(("thing", 1), build)
        assert a is b
        assert len(calls) == 1

    def test_admm_projector_shared_across_estimators(self):
        from repro.hierarchy.admm import HHADMM

        a = HHADMM(1.0, d=16, branching=4)
        b = HHADMM(1.0, d=16, branching=4)
        assert a._projector is b._projector
