"""Smoke tests for the figure generators (tiny scales)."""

import pytest

from repro.experiments import figures


TINY = dict(n=3000, repeats=1, seed=0)


class TestFig1:
    def test_summary_rows(self):
        rows = figures.fig1_dataset_summary(n=2000, datasets=("beta", "income"))
        datasets = {r.dataset for r in rows}
        assert datasets == {"beta", "income"}
        metrics = {r.metric for r in rows}
        assert "spikiness" in metrics and "peak-mass" in metrics

    def test_income_spikier_than_beta(self):
        rows = figures.fig1_dataset_summary(n=50_000, datasets=("beta", "income"))
        spiky = {r.dataset: r.mean for r in rows if r.metric == "spikiness"}
        assert spiky["income"] > spiky["beta"]


class TestFig2Through4:
    def test_fig2_rows(self):
        rows = figures.fig2_distribution_distances(
            datasets=("beta",), epsilons=(1.0,), **TINY
        )
        methods = {r.method for r in rows}
        assert "sw-ems" in methods and "hh-admm" in methods
        assert {r.metric for r in rows} == {"w1", "ks"}

    def test_fig3_includes_hierarchies(self):
        rows = figures.fig3_range_queries(datasets=("beta",), epsilons=(1.0,), **TINY)
        methods = {r.method for r in rows}
        assert "hh" in methods and "haar-hrr" in methods
        assert {r.metric for r in rows} == {"range-0.1", "range-0.4"}

    def test_fig4_includes_scalar_methods(self):
        rows = figures.fig4_statistics(datasets=("beta",), epsilons=(1.0,), **TINY)
        methods = {r.method for r in rows}
        assert "sr" in methods and "pm" in methods
        sr_metrics = {r.metric for r in rows if r.method == "sr"}
        assert sr_metrics == {"mean", "variance"}


class TestFig5Through7:
    def test_fig5_shapes(self):
        rows = figures.fig5_wave_shapes(
            datasets=("beta",),
            b_values=(0.2,),
            shapes=("square", "triangle"),
            n=3000,
            d=32,
            repeats=1,
        )
        assert {r.method for r in rows} == {"square", "triangle"}
        assert all(r.metric == "w1" for r in rows)

    def test_fig6_marks_b_star(self):
        rows = figures.fig6_bandwidth(
            epsilons=(1.0,), b_values=(0.1, 0.3), n=3000, d=32, repeats=1
        )
        assert any(r.extra.get("is_b_star") for r in rows)
        # The b* row was injected into the grid.
        assert len(rows) == 3

    def test_fig7_granularities(self):
        rows = figures.fig7_granularity(
            datasets=("beta",),
            epsilons=(1.0,),
            granularities=(32, 64),
            n=3000,
            repeats=1,
        )
        assert {r.method for r in rows} == {"sw-ems-d32", "sw-ems-d64"}

    def test_fig7_rejects_unalignable_grid(self):
        with pytest.raises(ValueError, match="coarsening"):
            figures.fig7_granularity(
                datasets=("beta",),
                epsilons=(1.0,),
                granularities=(32, 48),
                n=3000,
                repeats=1,
            )


class TestTable2:
    def test_matrix_complete(self):
        matrix = figures.table2_method_metric_matrix()
        methods = {m for m, _, _ in matrix}
        assert len(methods) == 10
        # Every method x metric combination present.
        assert len(matrix) == 10 * 7

    def test_spot_checks(self):
        lookup = {(m, metric): ok for m, metric, ok in figures.table2_method_metric_matrix()}
        assert lookup[("sw-ems", "w1")]
        assert not lookup[("hh", "w1")]
        assert lookup[("hh", "range-0.1")]
        assert not lookup[("pm", "quantile")]
        assert lookup[("pm", "mean")]
