"""Unit tests for result rendering and CSV persistence."""

import csv

from repro.experiments.reporting import format_series_table, group_rows, rows_to_csv
from repro.experiments.runner import ResultRow


def make_rows():
    return [
        ResultRow("beta", "sw-ems", 1.0, "w1", 0.01, 0.001, 3),
        ResultRow("beta", "sw-ems", 2.0, "w1", 0.005, 0.0005, 3),
        ResultRow("beta", "cfo-16", 1.0, "w1", 0.02, 0.002, 3),
        ResultRow("taxi", "sw-ems", 1.0, "ks", 0.03, 0.003, 3),
    ]


class TestGroupRows:
    def test_grouping_keys(self):
        grouped = group_rows(make_rows())
        assert set(grouped) == {("beta", "w1"), ("taxi", "ks")}

    def test_cell_lookup(self):
        grouped = group_rows(make_rows())
        assert grouped[("beta", "w1")][("sw-ems", 2.0)].mean == 0.005


class TestFormatSeriesTable:
    def test_contains_methods_and_epsilons(self):
        text = format_series_table(make_rows(), title="Test")
        assert "Test" in text
        assert "sw-ems" in text and "cfo-16" in text
        assert "eps=1" in text and "eps=2" in text

    def test_one_section_per_dataset_metric(self):
        text = format_series_table(make_rows())
        assert "[beta] metric=w1" in text
        assert "[taxi] metric=ks" in text

    def test_missing_cells_blank(self):
        text = format_series_table(make_rows())
        # cfo-16 has no eps=2 value; the row still renders.
        line = next(l for l in text.splitlines() if l.startswith("cfo-16"))
        assert "0.02" in line


class TestRowsToCSV:
    def test_roundtrip(self, tmp_path):
        path = rows_to_csv(make_rows(), tmp_path / "out.csv")
        with path.open() as handle:
            records = list(csv.DictReader(handle))
        assert len(records) == 4
        assert records[0]["dataset"] == "beta"
        assert float(records[0]["mean"]) == 0.01

    def test_creates_parent_dirs(self, tmp_path):
        path = rows_to_csv(make_rows(), tmp_path / "a" / "b" / "out.csv")
        assert path.exists()
