"""Unit tests for the sweep runner."""

import numpy as np
import pytest

from repro.datasets.base import Dataset
from repro.experiments.runner import (
    ResultRow,
    SweepConfig,
    evaluate_histogram,
    run_sweep,
)


@pytest.fixture(scope="module")
def tiny_dataset():
    values = np.random.default_rng(0).beta(5, 2, 4000)
    return Dataset(name="beta", values=values, default_bins=32)


class TestSweepConfig:
    def test_valid(self):
        SweepConfig(
            dataset="beta",
            methods=("sw-ems",),
            epsilons=(1.0,),
            metrics=("w1",),
        )

    def test_rejects_unknown_method(self):
        with pytest.raises(ValueError, match="unknown method"):
            SweepConfig(
                dataset="beta",
                methods=("quantum",),
                epsilons=(1.0,),
                metrics=("w1",),
            )

    def test_rejects_bad_repeats(self):
        with pytest.raises(ValueError, match="repeats"):
            SweepConfig(
                dataset="beta",
                methods=("sw-ems",),
                epsilons=(1.0,),
                metrics=("w1",),
                repeats=0,
            )


class TestEvaluateHistogram:
    def test_all_metrics(self, rng):
        true = rng.dirichlet(np.ones(32))
        est = rng.dirichlet(np.ones(32))
        queries = {0.1: np.array([0.1, 0.5]), 0.4: np.array([0.2])}
        out = evaluate_histogram(
            true,
            est,
            ("w1", "ks", "range-0.1", "range-0.4", "mean", "variance", "quantile"),
            queries,
        )
        assert set(out) == {
            "w1",
            "ks",
            "range-0.1",
            "range-0.4",
            "mean",
            "variance",
            "quantile",
        }
        assert all(np.isfinite(v) for v in out.values())

    def test_identical_histograms_zero_errors(self, rng):
        x = rng.dirichlet(np.ones(16))
        out = evaluate_histogram(x, x, ("w1", "ks", "mean"), {})
        assert all(v == pytest.approx(0.0) for v in out.values())

    def test_unknown_metric_rejected(self, rng):
        x = rng.dirichlet(np.ones(4))
        with pytest.raises(ValueError, match="unknown metric"):
            evaluate_histogram(x, x, ("l7",), {})


class TestRunSweep:
    def test_rows_structure(self, tiny_dataset):
        config = SweepConfig(
            dataset="beta",
            methods=("sw-ems", "cfo-16"),
            epsilons=(1.0, 2.0),
            metrics=("w1",),
            repeats=2,
            seed=3,
        )
        rows = run_sweep(config, dataset=tiny_dataset)
        assert len(rows) == 4  # 2 methods x 2 epsilons x 1 metric
        assert all(isinstance(r, ResultRow) for r in rows)
        assert all(r.repeats == 2 for r in rows)
        assert all(np.isfinite(r.mean) and np.isfinite(r.std) for r in rows)

    def test_deterministic_given_seed(self, tiny_dataset):
        config = SweepConfig(
            dataset="beta",
            methods=("sw-ems",),
            epsilons=(1.0,),
            metrics=("w1",),
            repeats=2,
            seed=11,
        )
        a = run_sweep(config, dataset=tiny_dataset)
        b = run_sweep(config, dataset=tiny_dataset)
        assert a[0].mean == b[0].mean

    def test_scalar_methods_only_get_supported_metrics(self, tiny_dataset):
        config = SweepConfig(
            dataset="beta",
            methods=("pm",),
            epsilons=(1.0,),
            metrics=("w1", "mean"),
            repeats=1,
        )
        rows = run_sweep(config, dataset=tiny_dataset)
        assert {r.metric for r in rows} == {"mean"}

    def test_leaf_signed_methods_range_only(self, tiny_dataset):
        config = SweepConfig(
            dataset="beta",
            methods=("haar-hrr",),
            epsilons=(1.0,),
            metrics=("w1", "range-0.1"),
            repeats=1,
            d=32,
        )
        rows = run_sweep(config, dataset=tiny_dataset)
        assert {r.metric for r in rows} == {"range-0.1"}

    def test_variance_metric_via_two_phase(self, tiny_dataset):
        config = SweepConfig(
            dataset="beta",
            methods=("sr",),
            epsilons=(2.0,),
            metrics=("mean", "variance"),
            repeats=1,
        )
        rows = run_sweep(config, dataset=tiny_dataset)
        assert {r.metric for r in rows} == {"mean", "variance"}
