"""Tests for the Table-2-as-plans comparison harness."""

import numpy as np
import pytest

from repro.experiments.plans import (
    DEFAULT_RANGE_WINDOWS,
    report_errors,
    run_plan_trial,
    table2_plan,
)


@pytest.fixture(scope="module")
def sample() -> dict:
    return {"value": np.random.default_rng(41).beta(5.0, 2.0, 20_000)}


class TestTable2Plan:
    def test_covers_table2_task_columns(self):
        plan = table2_plan(1.0, d=64)
        assert sorted(t.task for t in plan.tasks) == [
            "distribution",
            "mean",
            "quantiles",
            "range_queries",
            "variance",
        ]

    def test_windows_cover_both_table2_widths(self):
        widths = {round(hi - lo, 10) for lo, hi in DEFAULT_RANGE_WINDOWS}
        assert widths == {0.1, 0.4}

    def test_single_attribute_unit_domain(self):
        plan = table2_plan(0.5, d=32)
        (spec,) = plan.attributes
        assert (spec.low, spec.high) == (0.0, 1.0)
        assert spec.d == 32


class TestRunAndScore:
    def test_sharded_run_scores_every_task(self, sample):
        plan = table2_plan(1.0, d=64)
        report = run_plan_trial(
            plan, sample, shards=2, rng=np.random.default_rng(3)
        )
        errors = report_errors(report, plan, sample)
        assert set(errors) == {t.key for t in plan.tasks}
        # Paper-scale sanity: unit-domain errors from 20k users at eps=1.
        assert errors["mean:value"] < 0.05
        assert errors["distribution:value"] < 0.05
        assert errors["quantiles:value"] < 0.05
        assert errors["range_queries:value"] < 0.1

    def test_shards_equal_single_run_report_count(self, sample):
        plan = table2_plan(1.0, d=32)
        single = run_plan_trial(plan, sample, rng=np.random.default_rng(5))
        sharded = run_plan_trial(
            plan, sample, shards=3, rng=np.random.default_rng(5)
        )
        assert single["mean:value"].n_reports == sharded["mean:value"].n_reports

    def test_bad_shards_rejected(self, sample):
        with pytest.raises(ValueError, match="shards"):
            run_plan_trial(table2_plan(1.0, d=32), sample, shards=0)

    def test_seed_like_rng_gives_independent_shard_noise(self, sample):
        """An int seed must not be re-materialized per shard — identical
        noise in every shard would bias the merged estimate."""
        from repro.tasks import Session

        plan = table2_plan(1.0, d=32)
        # Both shards hold the same values: only randomization can differ.
        data = {"value": np.tile(sample["value"][:2000], 2)}
        merged = run_plan_trial(plan, data, shards=2, rng=7)
        single = Session(plan).partial_fit(
            {"value": data["value"][:2000]}, rng=7
        ).results()
        # Correlated shards would double identical counts, reproducing the
        # single-shard reconstruction exactly; independent noise differs.
        assert merged["mean:value"].n_reports == 4000
        assert not np.array_equal(
            merged["distribution:value"].value,
            single["distribution:value"].value,
        )
