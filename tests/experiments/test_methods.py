"""Unit tests for the method registry (paper Table 2)."""

import pytest

from repro.experiments.methods import (
    DISTRIBUTION_METRICS,
    METHOD_REGISTRY,
    make_method,
)


class TestRegistryContents:
    def test_all_paper_methods_present(self):
        expected = {
            "sw-ems",
            "sw-em",
            "hh-admm",
            "cfo-16",
            "cfo-32",
            "cfo-64",
            "hh",
            "haar-hrr",
            "sr",
            "pm",
        }
        assert set(METHOD_REGISTRY) == expected

    def test_table2_applicability(self):
        """Mirror of the paper's Table 2 checkmarks."""
        reg = METHOD_REGISTRY
        for name in ("sw-ems", "sw-em", "hh-admm", "cfo-16", "cfo-32", "cfo-64"):
            assert set(reg[name].supported_metrics) == set(DISTRIBUTION_METRICS)
        for name in ("hh", "haar-hrr"):
            assert set(reg[name].supported_metrics) == {"range-0.1", "range-0.4"}
        for name in ("sr", "pm"):
            assert set(reg[name].supported_metrics) == {"mean", "variance"}

    def test_table2_row_order_matches_paper(self):
        assert list(METHOD_REGISTRY) == [
            "sw-ems",
            "sw-em",
            "hh-admm",
            "cfo-16",
            "cfo-32",
            "cfo-64",
            "hh",
            "haar-hrr",
            "sr",
            "pm",
        ]

    def test_kinds(self):
        assert METHOD_REGISTRY["sw-ems"].kind == "distribution"
        assert METHOD_REGISTRY["hh"].kind == "leaf-signed"
        assert METHOD_REGISTRY["pm"].kind == "scalar"

    def test_supports_helper(self):
        assert METHOD_REGISTRY["sw-ems"].supports("w1")
        assert not METHOD_REGISTRY["hh"].supports("w1")


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestMakeMethod:
    @pytest.mark.parametrize(
        "name", ["sw-ems", "sw-em", "hh-admm", "cfo-16", "hh", "haar-hrr"]
    )
    def test_instantiates_fit_capable(self, name, beta_values, rng):
        method = make_method(name, 1.0, 64)
        out = method.fit(beta_values, rng=rng)
        assert out.shape == (64,)

    def test_scalar_factories(self):
        """Scalar methods are real estimators now, not (name, eps) tuples."""
        from repro.mean.scalar import ScalarMeanEstimator

        sr = make_method("sr", 1.0, 64)
        assert isinstance(sr, ScalarMeanEstimator)
        assert sr.name == "sr"
        assert sr.epsilon == 1.0
        pm = make_method("pm", 2.0, 64)
        assert pm.name == "pm"
        assert pm.epsilon == 2.0
        assert pm.kind == "scalar"

    def test_unknown_rejected(self):
        with pytest.raises(ValueError, match="unknown method"):
            make_method("dp-sgd", 1.0, 64)


class TestMakeMethodDeprecationShim:
    def test_emits_deprecation_warning(self):
        with pytest.warns(DeprecationWarning, match="make_estimator"):
            make_method("sw-ems", 1.0, 64)

    @pytest.mark.filterwarnings("ignore::DeprecationWarning")
    @pytest.mark.parametrize("name", sorted(METHOD_REGISTRY))
    def test_matches_make_estimator(self, name):
        """The shim builds the same estimator repro.api.make_estimator does."""
        from repro.api import make_estimator

        shimmed = make_method(name, 1.0, 64)
        direct = make_estimator(name, 1.0, 64)
        assert type(shimmed) is type(direct)
        assert shimmed._params() == direct._params()

    def test_unknown_name_warns_before_rejecting(self):
        """Even the error path goes through the deprecation warning."""
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError, match="unknown method"):
                make_method("nope", 1.0, 64)
