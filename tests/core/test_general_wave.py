"""Unit, statistical, and privacy tests for General Wave mechanisms."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.general_wave import WAVE_SHAPES, GeneralWave
from repro.core.square_wave import SquareWave
from repro.privacy.audit import audit_continuous_mechanism


class TestGeneralWaveParameters:
    def test_square_ratio_matches_sw(self):
        gw = GeneralWave(1.0, ratio=1.0)
        sw = SquareWave(1.0)
        assert gw.q == pytest.approx(sw.q)
        assert gw.peak == pytest.approx(sw.p)

    def test_peak_is_e_eps_q(self):
        for ratio in (0.0, 0.4, 1.0):
            gw = GeneralWave(1.3, ratio=ratio)
            assert gw.peak / gw.q == pytest.approx(math.exp(1.3))

    def test_bump_mass_identity(self):
        """bump mass == 1 - (2b+1) q for every shape (GW definition)."""
        for ratio in (0.0, 0.2, 0.6, 1.0):
            gw = GeneralWave(1.0, ratio=ratio)
            assert gw.bump_mass == pytest.approx(1 - (2 * gw.b + 1) * gw.q)

    def test_smaller_ratio_means_larger_q(self):
        """Less plateau area must be compensated by a higher baseline."""
        qs = [GeneralWave(1.0, ratio=r).q for r in (0.0, 0.5, 1.0)]
        assert qs[0] > qs[1] > qs[2]

    def test_shape_names(self):
        assert GeneralWave(1.0, ratio=1.0).name == "square"
        assert GeneralWave(1.0, ratio=0.0).name == "triangle"
        assert GeneralWave(1.0, ratio=0.4).name == "trapezoid-0.4"

    def test_wave_shapes_registry(self):
        assert set(WAVE_SHAPES) == {
            "square",
            "trapezoid-0.8",
            "trapezoid-0.6",
            "trapezoid-0.4",
            "trapezoid-0.2",
            "triangle",
        }

    def test_rejects_bad_ratio(self):
        with pytest.raises(ValueError):
            GeneralWave(1.0, ratio=1.5)


class TestBumpFunctions:
    @pytest.mark.parametrize("ratio", [0.0, 0.3, 0.7, 1.0])
    def test_cdf_matches_density_integral(self, ratio):
        gw = GeneralWave(1.0, ratio=ratio)
        grid = np.linspace(-gw.b, gw.b, 100_001)
        numeric = np.concatenate(
            [[0.0], np.cumsum((gw.bump_density(grid)[1:] + gw.bump_density(grid)[:-1]) / 2 * np.diff(grid))]
        )
        np.testing.assert_allclose(gw.bump_cdf(grid), numeric, atol=1e-6)

    def test_cdf_endpoints(self):
        gw = GeneralWave(1.0, ratio=0.5)
        assert gw.bump_cdf(np.array([-gw.b]))[0] == pytest.approx(0.0)
        assert gw.bump_cdf(np.array([gw.b]))[0] == pytest.approx(gw.bump_mass)

    def test_density_symmetric(self):
        gw = GeneralWave(1.0, ratio=0.3)
        zs = np.linspace(0, gw.b, 50)
        np.testing.assert_allclose(gw.bump_density(zs), gw.bump_density(-zs))

    def test_pdf_integrates_to_one(self):
        for ratio in (0.0, 0.5, 1.0):
            gw = GeneralWave(1.0, ratio=ratio)
            grid = np.linspace(gw.output_low, gw.output_high, 400_001)
            assert np.trapezoid(gw.pdf(0.4, grid), grid) == pytest.approx(1.0, abs=1e-4)


class TestGeneralWaveSampling:
    @pytest.mark.parametrize("ratio", [0.0, 0.4, 0.8])
    def test_empirical_density_matches_pdf(self, ratio, rng):
        gw = GeneralWave(1.0, ratio=ratio)
        v = 0.5
        reports = gw.privatize(np.full(500_000, v), rng=rng)
        counts, edges = np.histogram(
            reports, bins=80, range=(gw.output_low, gw.output_high), density=True
        )
        centers = (edges[:-1] + edges[1:]) / 2
        np.testing.assert_allclose(counts, gw.pdf(v, centers), atol=0.06)

    def test_reports_in_domain(self, rng):
        gw = GeneralWave(1.0, ratio=0.2)
        reports = gw.privatize(rng.random(20_000), rng=rng)
        assert reports.min() >= gw.output_low and reports.max() <= gw.output_high


class TestGeneralWavePrivacy:
    @pytest.mark.parametrize("ratio", [0.0, 0.2, 0.4, 0.6, 0.8, 1.0])
    def test_ldp_all_shapes(self, ratio):
        result = audit_continuous_mechanism(GeneralWave(1.0, ratio=ratio))
        assert result.satisfied

    @given(st.floats(0.2, 3.0), st.floats(0.0, 1.0), st.floats(0.05, 0.5))
    def test_ldp_property(self, epsilon, ratio, b):
        result = audit_continuous_mechanism(
            GeneralWave(epsilon, b=b, ratio=ratio), input_grid=9, output_grid=81
        )
        assert result.satisfied


class TestGeneralWaveMatrix:
    def test_columns_sum_to_one(self):
        for ratio in (0.0, 0.5):
            m = GeneralWave(1.0, ratio=ratio).transition_matrix(24, 24)
            np.testing.assert_allclose(m.sum(axis=0), 1.0, atol=1e-9)

    def test_square_case_routes_to_exact(self):
        gw = GeneralWave(1.0, ratio=1.0)
        sw = SquareWave(1.0)
        np.testing.assert_allclose(
            gw.transition_matrix(16, 16), sw.transition_matrix(16, 16), atol=1e-12
        )

    def test_matrix_matches_monte_carlo(self, rng):
        gw = GeneralWave(1.0, ratio=0.4)
        d = 8
        m = gw.transition_matrix(d, d)
        bucket = 5
        values = rng.uniform(bucket / d, (bucket + 1) / d, 400_000)
        counts = gw.bucketize_reports(gw.privatize(values, rng=rng), d)
        np.testing.assert_allclose(counts / counts.sum(), m[:, bucket], atol=0.004)
