"""Unit, statistical, and privacy tests for the Square Wave mechanisms."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bandwidth import optimal_bandwidth
from repro.core.square_wave import DiscreteSquareWave, SquareWave
from repro.privacy.audit import audit_continuous_mechanism, audit_matrix


class TestSquareWaveParameters:
    def test_default_b_is_optimal(self):
        sw = SquareWave(1.0)
        assert sw.b == pytest.approx(optimal_bandwidth(1.0))

    def test_p_q_ratio(self):
        sw = SquareWave(1.5)
        assert sw.p / sw.q == pytest.approx(math.exp(1.5))

    def test_density_normalizes(self):
        """2b*p + 1*q = 1 (near band width 2b, far length exactly 1)."""
        sw = SquareWave(2.0, b=0.2)
        assert 2 * sw.b * sw.p + sw.q == pytest.approx(1.0)

    def test_output_domain(self):
        sw = SquareWave(1.0, b=0.3)
        assert sw.output_low == pytest.approx(-0.3)
        assert sw.output_high == pytest.approx(1.3)

    def test_rejects_bad_b(self):
        with pytest.raises(ValueError):
            SquareWave(1.0, b=0.0)
        with pytest.raises(ValueError):
            SquareWave(1.0, b=0.6)


class TestSquareWavePdf:
    def test_near_band_is_p(self):
        sw = SquareWave(1.0, b=0.2)
        assert sw.pdf(0.5, np.array([0.5, 0.4, 0.69]))[0] == sw.p

    def test_far_is_q(self):
        sw = SquareWave(1.0, b=0.2)
        np.testing.assert_allclose(sw.pdf(0.5, np.array([0.0, 1.1])), sw.q)

    def test_outside_domain_zero(self):
        sw = SquareWave(1.0, b=0.2)
        np.testing.assert_allclose(sw.pdf(0.5, np.array([-0.5, 1.5])), 0.0)

    def test_integrates_to_one(self):
        sw = SquareWave(1.0, b=0.25)
        grid = np.linspace(sw.output_low, sw.output_high, 2_000_001)
        integral = np.trapezoid(sw.pdf(0.3, grid), grid)
        assert integral == pytest.approx(1.0, abs=1e-5)


class TestSquareWavePrivatize:
    def test_reports_in_output_domain(self, rng):
        sw = SquareWave(1.0)
        reports = sw.privatize(rng.random(10_000), rng=rng)
        assert reports.min() >= sw.output_low
        assert reports.max() <= sw.output_high

    def test_near_band_probability(self, rng):
        sw = SquareWave(1.0, b=0.25)
        reports = sw.privatize(np.full(100_000, 0.5), rng=rng)
        near_rate = (np.abs(reports - 0.5) <= sw.b).mean()
        assert near_rate == pytest.approx(2 * sw.b * sw.p, abs=0.005)

    def test_empirical_density_matches_pdf(self, rng):
        """Report histogram for a fixed input matches the exact density."""
        sw = SquareWave(1.0, b=0.2)
        v = 0.123
        reports = sw.privatize(np.full(400_000, v), rng=rng)
        bins = 60
        counts, edges = np.histogram(
            reports, bins=bins, range=(sw.output_low, sw.output_high), density=True
        )
        centers = (edges[:-1] + edges[1:]) / 2
        expected = sw.pdf(v, centers)
        # Only compare bins fully inside one regime (not straddling edges).
        interior = (np.abs(np.abs(centers - v) - sw.b) > (edges[1] - edges[0]))
        np.testing.assert_allclose(counts[interior], expected[interior], rtol=0.1)

    def test_edge_inputs_supported(self, rng):
        sw = SquareWave(1.0)
        for v in (0.0, 1.0):
            reports = sw.privatize(np.full(1000, v), rng=rng)
            assert reports.min() >= sw.output_low - 1e-12
            assert reports.max() <= sw.output_high + 1e-12


class TestSquareWavePrivacy:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0, 4.0])
    def test_continuous_ldp(self, epsilon):
        result = audit_continuous_mechanism(SquareWave(epsilon))
        assert result.satisfied
        assert result.max_ratio == pytest.approx(math.exp(epsilon), rel=1e-9)

    @given(st.floats(0.1, 4.0), st.floats(0.05, 0.5))
    def test_ldp_for_any_bandwidth(self, epsilon, b):
        """Privacy holds for every b, not just b* (property test)."""
        result = audit_continuous_mechanism(
            SquareWave(epsilon, b=b), input_grid=11, output_grid=101
        )
        assert result.satisfied


class TestDiscreteSquareWave:
    def test_parameters_normalize(self):
        dsw = DiscreteSquareWave(1.0, 32)
        e = math.exp(1.0)
        assert (2 * dsw.b + 1) * dsw.p + (dsw.d - 1) * dsw.q == pytest.approx(1.0)
        assert dsw.p / dsw.q == pytest.approx(e)

    def test_output_domain_size(self):
        dsw = DiscreteSquareWave(1.0, 32, b=5)
        assert dsw.d_out == 42

    def test_reports_in_domain(self, rng):
        dsw = DiscreteSquareWave(1.0, 32)
        reports = dsw.privatize(rng.integers(0, 32, 10_000), rng=rng)
        assert reports.min() >= 0 and reports.max() < dsw.d_out

    def test_near_set_probability(self, rng):
        dsw = DiscreteSquareWave(1.0, 16)
        v = 7
        reports = dsw.privatize(np.full(100_000, v), rng=rng)
        near = (reports >= v) & (reports <= v + 2 * dsw.b)
        assert near.mean() == pytest.approx((2 * dsw.b + 1) * dsw.p, abs=0.005)

    def test_far_reports_uniform(self, rng):
        dsw = DiscreteSquareWave(1.0, 8, b=1)
        v = 0
        reports = dsw.privatize(np.full(200_000, v), rng=rng)
        far_mask = (reports < v) | (reports > v + 2 * dsw.b)
        far_counts = np.bincount(reports[far_mask], minlength=dsw.d_out)
        far_positions = far_counts[far_counts > 0]
        # Every far position should receive roughly the same mass.
        assert far_positions.size == dsw.d - 1
        np.testing.assert_allclose(
            far_positions / far_positions.sum(), 1.0 / (dsw.d - 1), rtol=0.1
        )

    def test_matrix_ldp(self):
        dsw = DiscreteSquareWave(1.0, 32)
        result = audit_matrix(dsw.transition_matrix(), 1.0)
        assert result.satisfied
        assert result.max_ratio == pytest.approx(math.exp(1.0))

    def test_matrix_matches_empirical(self, rng):
        dsw = DiscreteSquareWave(1.0, 8)
        m = dsw.transition_matrix()
        v = 3
        reports = dsw.privatize(np.full(300_000, v), rng=rng)
        empirical = np.bincount(reports, minlength=dsw.d_out) / reports.size
        np.testing.assert_allclose(empirical, m[:, v], atol=0.004)

    def test_b_zero_allowed(self, rng):
        dsw = DiscreteSquareWave(5.0, 4, b=0)
        reports = dsw.privatize(np.array([0, 1, 2, 3]), rng=rng)
        assert reports.min() >= 0 and reports.max() < 4

    def test_rejects_out_of_domain_values(self, rng):
        with pytest.raises(ValueError):
            DiscreteSquareWave(1.0, 8).privatize(np.array([8]), rng=rng)
