"""Unit tests for EM and EMS reconstruction."""

import numpy as np
import pytest

from repro.core.em import (
    em_reconstruct,
    ems_reconstruct,
    expectation_maximization,
)
from repro.core.smoothing import binomial_kernel
from repro.core.square_wave import SquareWave


def _identity_problem(d=8, n=1000, rng=None):
    """Noiseless 'mechanism': reports equal inputs exactly."""
    gen = np.random.default_rng(rng)
    x = gen.dirichlet(np.ones(d))
    counts = np.round(x * n)
    return np.eye(d), counts, counts / counts.sum()


class TestEMBasics:
    def test_identity_matrix_recovers_input(self):
        matrix, counts, target = _identity_problem(rng=0)
        result = expectation_maximization(matrix, counts, tol=1e-12, max_iter=500)
        np.testing.assert_allclose(result.estimate, target, atol=1e-6)

    def test_estimate_is_distribution(self, rng):
        sw = SquareWave(1.0)
        matrix = sw.transition_matrix(16, 16)
        counts = rng.integers(0, 100, 16).astype(float)
        result = expectation_maximization(matrix, counts)
        assert (result.estimate >= 0).all()
        assert result.estimate.sum() == pytest.approx(1.0)

    def test_loglik_monotone_without_smoothing(self, rng):
        sw = SquareWave(1.0)
        matrix = sw.transition_matrix(16, 16)
        counts = rng.integers(1, 100, 16).astype(float)
        result = expectation_maximization(matrix, counts, tol=-np.inf, max_iter=60)
        assert (np.diff(result.history) >= -1e-8).all()

    def test_convergence_flag(self, rng):
        sw = SquareWave(1.0)
        matrix = sw.transition_matrix(8, 8)
        counts = rng.integers(1, 50, 8).astype(float)
        converged = expectation_maximization(matrix, counts, tol=1.0, max_iter=100)
        assert converged.converged
        capped = expectation_maximization(matrix, counts, tol=-np.inf, max_iter=3)
        assert not capped.converged
        assert capped.iterations == 3

    def test_custom_x0(self):
        matrix, counts, target = _identity_problem(rng=1)
        x0 = np.full(8, 1.0 / 8)
        result = expectation_maximization(matrix, counts, x0=x0, tol=1e-12, max_iter=500)
        np.testing.assert_allclose(result.estimate, target, atol=1e-6)

    def test_mle_matches_observed_distribution(self, rng):
        """With an invertible mixing matrix and consistent counts, the MLE
        must satisfy M x = observed frequencies."""
        sw = SquareWave(2.0)
        matrix = sw.transition_matrix(8, 8)
        x_true = np.array([0.3, 0.05, 0.05, 0.1, 0.2, 0.1, 0.1, 0.1])
        counts = matrix @ x_true * 1e6  # exact expected counts
        result = expectation_maximization(matrix, counts, tol=1e-10, max_iter=20_000)
        np.testing.assert_allclose(result.estimate, x_true, atol=1e-3)


class TestEMValidation:
    def test_rejects_shape_mismatch(self):
        with pytest.raises(ValueError, match="counts"):
            expectation_maximization(np.eye(4), np.ones(3))

    def test_rejects_negative_counts(self):
        with pytest.raises(ValueError, match="non-negative"):
            expectation_maximization(np.eye(3), np.array([1.0, -1.0, 0.0]))

    def test_rejects_zero_counts(self):
        with pytest.raises(ValueError, match="at least one report"):
            expectation_maximization(np.eye(3), np.zeros(3))

    def test_rejects_bad_columns(self):
        with pytest.raises(ValueError, match="columns"):
            expectation_maximization(np.eye(3) * 2.0, np.ones(3))

    def test_rejects_bad_x0(self):
        with pytest.raises(ValueError, match="x0"):
            expectation_maximization(np.eye(3), np.ones(3), x0=np.array([1.0, -1.0, 1.0]))

    def test_rejects_bad_max_iter(self):
        with pytest.raises(ValueError, match="max_iter"):
            expectation_maximization(np.eye(3), np.ones(3), max_iter=0)


class TestEMS:
    def test_smoothing_produces_smoother_estimate(self, rng):
        """EMS output has lower total variation than plain EM on noisy data."""
        sw = SquareWave(0.5)
        d = 32
        matrix = sw.transition_matrix(d, d)
        x_true = np.full(d, 1.0 / d)
        expected = matrix @ x_true
        counts = rng.multinomial(3000, expected).astype(float)
        em = expectation_maximization(matrix, counts, tol=1e-6, max_iter=2000)
        ems = expectation_maximization(
            matrix, counts, tol=1e-6, max_iter=2000, smoothing_kernel=binomial_kernel(2)
        )
        tv = lambda x: np.abs(np.diff(x)).sum()  # noqa: E731
        assert tv(ems.estimate) < tv(em.estimate)

    def test_ems_estimate_is_distribution(self, rng):
        sw = SquareWave(1.0)
        matrix = sw.transition_matrix(16, 16)
        counts = rng.integers(1, 100, 16).astype(float)
        result = ems_reconstruct(matrix, counts)
        assert (result.estimate >= 0).all()
        assert result.estimate.sum() == pytest.approx(1.0)

    def test_paper_default_tolerances(self, rng):
        """em_reconstruct scales tol by e^eps; ems_reconstruct fixes 1e-3."""
        sw = SquareWave(1.0)
        matrix = sw.transition_matrix(8, 8)
        counts = rng.integers(1, 50, 8).astype(float)
        # Both should converge and produce distributions.
        for result in (em_reconstruct(matrix, counts, epsilon=1.0), ems_reconstruct(matrix, counts)):
            assert result.converged
            assert result.estimate.sum() == pytest.approx(1.0)

    def test_ems_recovers_smooth_distribution_better(self):
        """At the paper's granularity regime (fine buckets, strong noise),
        EMS beats paper-tolerance EM in average W1 — the reason the paper
        adds the S-step. At coarse granularity the effect reverses, which is
        consistent with the paper using 256-1024 buckets."""
        from repro.metrics.distances import wasserstein_distance

        epsilon, d, n = 0.5, 256, 20_000
        sw = SquareWave(epsilon)
        matrix = sw.transition_matrix(d, d)
        base = np.random.default_rng(99).beta(5, 2, 100_000)
        x_true = np.bincount(
            np.minimum((base * d).astype(int), d - 1), minlength=d
        ) / base.size
        em_errors, ems_errors = [], []
        for seed in range(3):
            counts = (
                np.random.default_rng(seed)
                .multinomial(n, matrix @ x_true)
                .astype(float)
            )
            em = em_reconstruct(matrix, counts, epsilon=epsilon)
            ems = ems_reconstruct(matrix, counts)
            em_errors.append(wasserstein_distance(x_true, em.estimate))
            ems_errors.append(wasserstein_distance(x_true, ems.estimate))
        assert np.mean(ems_errors) < np.mean(em_errors)
