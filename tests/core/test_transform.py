"""Unit and property tests for transition-matrix construction."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.square_wave import SquareWave
from repro.core.transform import (
    discrete_sw_transition_matrix,
    sw_transition_matrix,
    trapezoid_antiderivative,
)


class TestTrapezoidAntiderivative:
    def test_zero_before_support(self):
        assert trapezoid_antiderivative(np.array([-5.0]), 0.0, 2.0, 1.0)[0] == 0.0

    def test_total_area(self):
        # Trapezoid t1=0, rise to lmax=1 at t=1, plateau to t3=2, fall to 3.
        total = trapezoid_antiderivative(np.array([10.0]), 0.0, 2.0, 1.0)[0]
        # area = rise (0.5) + plateau (1*1) + fall (0.5)
        assert total == pytest.approx(2.0)

    def test_matches_numerical_integration(self):
        t1, t3, lmax = -0.3, 0.4, 0.25
        t4 = t3 + lmax

        def trap(v):
            return max(0.0, min(v - t1, t4 - v, lmax))

        grid = np.linspace(-1.0, 1.0, 200_001)
        numeric = np.cumsum([trap(v) for v in grid]) * (grid[1] - grid[0])
        exact = trapezoid_antiderivative(grid, t1, t3, lmax)
        np.testing.assert_allclose(exact[1:], numeric[:-1], atol=1e-4)

    @given(
        st.floats(-1.0, 1.0),
        st.floats(0.01, 1.0),
        st.floats(0.01, 0.5),
    )
    def test_monotone_nondecreasing(self, t1, gap, lmax):
        t3 = t1 + lmax + gap
        ts = np.linspace(t1 - 1, t3 + lmax + 1, 100)
        vals = trapezoid_antiderivative(ts, t1, t3, lmax)
        assert (np.diff(vals) >= -1e-12).all()


class TestSWTransitionMatrix:
    @pytest.mark.parametrize("d,d_out", [(16, 16), (32, 16), (16, 32), (64, 64)])
    def test_columns_sum_to_one(self, d, d_out):
        sw = SquareWave(1.0)
        m = sw_transition_matrix((sw.p, sw.q), sw.b, d, d_out)
        np.testing.assert_allclose(m.sum(axis=0), 1.0, atol=1e-12)

    def test_all_entries_positive(self):
        sw = SquareWave(1.0)
        m = sw_transition_matrix((sw.p, sw.q), sw.b, 32, 32)
        assert m.min() > 0.0

    def test_entries_bounded_by_p_times_width(self):
        sw = SquareWave(1.0)
        d = 32
        m = sw_transition_matrix((sw.p, sw.q), sw.b, d, d)
        out_width = (1 + 2 * sw.b) / d
        assert m.max() <= sw.p * out_width + 1e-12
        assert m.min() >= sw.q * out_width - 1e-12

    def test_matches_monte_carlo(self, rng):
        """Columns must equal the empirical report distribution of inputs
        drawn uniformly inside one bucket."""
        sw = SquareWave(1.0)
        d = 8
        m = sw_transition_matrix((sw.p, sw.q), sw.b, d, d)
        bucket = 3
        values = rng.uniform(bucket / d, (bucket + 1) / d, 400_000)
        reports = sw.privatize(values, rng=rng)
        counts = sw.bucketize_reports(reports, d)
        np.testing.assert_allclose(counts / counts.sum(), m[:, bucket], atol=0.004)

    def test_symmetry_of_mirrored_buckets(self):
        """The SW density is symmetric, so bucket i and d-1-i mirror."""
        sw = SquareWave(1.0)
        m = sw_transition_matrix((sw.p, sw.q), sw.b, 16, 16)
        np.testing.assert_allclose(m, m[::-1, ::-1], atol=1e-12)

    def test_rejects_bad_b(self):
        with pytest.raises(ValueError):
            sw_transition_matrix((1.0, 0.5), 0.0, 8, 8)


class TestDiscreteSWTransitionMatrix:
    def test_shape(self):
        m = discrete_sw_transition_matrix(0.1, 0.01, b=3, d=10)
        assert m.shape == (16, 10)

    def test_band_structure(self):
        p, q, b, d = 0.2, 0.05, 2, 6
        m = discrete_sw_transition_matrix(p, q, b, d)
        for i in range(d):
            near = np.arange(i, i + 2 * b + 1)
            assert (m[near, i] == p).all()
            far = np.setdiff1d(np.arange(d + 2 * b), near)
            assert (m[far, i] == q).all()

    def test_columns_sum_to_one_with_mechanism_params(self):
        eps, d = 1.0, 32
        e = math.exp(eps)
        b = 4
        denom = (2 * b + 1) * e + d - 1
        m = discrete_sw_transition_matrix(e / denom, 1 / denom, b, d)
        np.testing.assert_allclose(m.sum(axis=0), 1.0, atol=1e-12)

    def test_b_zero_is_grr_like(self):
        m = discrete_sw_transition_matrix(0.5, 0.125, b=0, d=5)
        assert m.shape == (5, 5)
        np.testing.assert_allclose(np.diag(m), 0.5)
