"""Unit and integration tests for the high-level estimators."""

import numpy as np
import pytest

from repro.core.general_wave import GeneralWave
from repro.core.pipeline import (
    DiscreteSWEstimator,
    SWEstimator,
    WaveEstimator,
    estimate_distribution,
)
from repro.metrics.distances import wasserstein_distance
from tests.conftest import true_histogram


class TestSWEstimatorConstruction:
    def test_defaults(self):
        est = SWEstimator(1.0, d=64)
        assert est.postprocess == "ems"
        assert est.tol == pytest.approx(1e-3)
        assert est.d_out == 64

    def test_em_tolerance_scales_with_epsilon(self):
        est = SWEstimator(2.0, d=64, postprocess="em")
        assert est.tol == pytest.approx(1e-3 * np.exp(2.0))

    def test_explicit_tol_respected(self):
        assert SWEstimator(1.0, d=64, tol=0.5).tol == 0.5

    def test_rejects_bad_postprocess(self):
        with pytest.raises(ValueError, match="postprocess"):
            SWEstimator(1.0, d=64, postprocess="magic")

    def test_matrix_cached(self):
        est = SWEstimator(1.0, d=32)
        assert est.transition_matrix is est.transition_matrix


class TestSWEstimatorFit:
    def test_output_is_distribution(self, beta_values, rng):
        est = SWEstimator(1.0, d=64)
        out = est.fit(beta_values, rng=rng)
        assert out.shape == (64,)
        assert (out >= 0).all()
        assert out.sum() == pytest.approx(1.0)

    def test_diagnostics_populated(self, beta_values, rng):
        est = SWEstimator(1.0, d=64)
        est.fit(beta_values, rng=rng)
        assert est.result_ is not None
        assert est.result_.iterations >= 1

    def test_reconstruction_quality(self, beta_values, rng):
        """At eps=2 and n=20k the reconstruction must be close."""
        est = SWEstimator(2.0, d=64)
        out = est.fit(beta_values, rng=rng)
        truth = true_histogram(beta_values, 64)
        assert wasserstein_distance(truth, out) < 0.02

    def test_split_client_server_equals_fit(self, beta_values):
        est = SWEstimator(1.0, d=32)
        reports = est.privatize(beta_values, rng=np.random.default_rng(5))
        split = est.aggregate(reports)
        whole = SWEstimator(1.0, d=32).fit(beta_values, rng=np.random.default_rng(5))
        np.testing.assert_allclose(split, whole)

    def test_higher_epsilon_better(self, beta_values):
        truth = true_histogram(beta_values, 64)
        errors = []
        for eps in (0.25, 4.0):
            est = SWEstimator(eps, d=64)
            out = est.fit(beta_values, rng=np.random.default_rng(0))
            errors.append(wasserstein_distance(truth, out))
        assert errors[1] < errors[0]

    def test_dout_different_from_d(self, beta_values, rng):
        est = SWEstimator(1.0, d=32, d_out=64)
        out = est.fit(beta_values, rng=rng)
        assert out.shape == (32,)
        assert est.transition_matrix.shape == (64, 32)


class TestWaveEstimator:
    def test_general_wave_backend(self, beta_values, rng):
        est = WaveEstimator(GeneralWave(1.0, ratio=0.5), d=32)
        out = est.fit(beta_values, rng=rng)
        assert out.sum() == pytest.approx(1.0)

    def test_epsilon_property(self):
        est = WaveEstimator(GeneralWave(1.7, ratio=0.0), d=16)
        assert est.epsilon == pytest.approx(1.7)


class TestDiscreteSWEstimator:
    def test_output_is_distribution(self, beta_values, rng):
        est = DiscreteSWEstimator(1.0, d=64)
        out = est.fit(beta_values, rng=rng)
        assert out.shape == (64,)
        assert out.sum() == pytest.approx(1.0)

    def test_comparable_to_continuous(self, beta_values):
        """R-B and B-R agree closely (paper Section 5.4 finding)."""
        truth = true_histogram(beta_values, 64)
        cont = SWEstimator(1.0, d=64).fit(beta_values, rng=np.random.default_rng(1))
        disc = DiscreteSWEstimator(1.0, d=64).fit(beta_values, rng=np.random.default_rng(2))
        w_cont = wasserstein_distance(truth, cont)
        w_disc = wasserstein_distance(truth, disc)
        assert abs(w_cont - w_disc) < 0.02

    def test_rejects_bad_postprocess(self):
        with pytest.raises(ValueError):
            DiscreteSWEstimator(1.0, d=16, postprocess="nope")


class TestEstimateDistribution:
    def test_sw_ems(self, beta_values, rng):
        out = estimate_distribution(beta_values, 1.0, d=32, method="sw-ems", rng=rng)
        assert out.sum() == pytest.approx(1.0)

    def test_sw_em(self, beta_values, rng):
        out = estimate_distribution(beta_values, 1.0, d=32, method="sw-em", rng=rng)
        assert out.sum() == pytest.approx(1.0)

    def test_discrete(self, beta_values, rng):
        out = estimate_distribution(
            beta_values, 1.0, d=32, method="sw-discrete-ems", rng=rng
        )
        assert out.sum() == pytest.approx(1.0)

    def test_unknown_method(self, beta_values):
        with pytest.raises(ValueError, match="method"):
            estimate_distribution(beta_values, 1.0, method="nope")
