"""Unit and property tests for binomial smoothing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.smoothing import binomial_kernel, smooth


class TestBinomialKernel:
    def test_paper_kernel(self):
        np.testing.assert_allclose(binomial_kernel(2), [0.25, 0.5, 0.25])

    def test_order_four(self):
        np.testing.assert_allclose(binomial_kernel(4), np.array([1, 4, 6, 4, 1]) / 16)

    def test_order_zero_is_identity(self):
        np.testing.assert_allclose(binomial_kernel(0), [1.0])

    def test_sums_to_one(self):
        for order in (0, 2, 4, 6, 8):
            assert binomial_kernel(order).sum() == pytest.approx(1.0)

    def test_rejects_odd_order(self):
        with pytest.raises(ValueError):
            binomial_kernel(3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            binomial_kernel(-2)


class TestSmooth:
    def test_interior_formula(self):
        """x_i <- x_i/2 + (x_{i-1} + x_{i+1})/4, the paper's S-step."""
        x = np.array([0.0, 1.0, 0.0, 0.0, 0.0])
        out = smooth(x)
        assert out[1] == pytest.approx(0.5)
        assert out[0] == pytest.approx(0.25 / 0.75)  # boundary renormalized
        assert out[2] == pytest.approx(0.25)
        assert out[3] == 0.0

    def test_uniform_fixed_point(self):
        x = np.full(16, 1.0 / 16)
        np.testing.assert_allclose(smooth(x), x)

    def test_reduces_total_variation(self, rng):
        x = rng.dirichlet(np.ones(64))
        tv = np.abs(np.diff(x)).sum()
        tv_smoothed = np.abs(np.diff(smooth(x))).sum()
        assert tv_smoothed <= tv + 1e-12

    def test_custom_kernel(self):
        x = np.array([0.0, 0.0, 1.0, 0.0, 0.0])
        out = smooth(x, binomial_kernel(4))
        # Boundary taps are renormalized: index 0 keeps kernel weights
        # {6,4,1}/16 -> weight 11/16; index 1 keeps {4,6,4,1}/16 -> 15/16.
        np.testing.assert_allclose(out, [1 / 11, 4 / 15, 6 / 16, 4 / 15, 1 / 11])

    def test_rejects_even_kernel(self):
        with pytest.raises(ValueError):
            smooth(np.ones(4), np.array([0.5, 0.5]))

    def test_rejects_wide_kernel(self):
        with pytest.raises(ValueError):
            smooth(np.ones(2), binomial_kernel(8))

    @given(hnp.arrays(np.float64, st.integers(3, 64), elements=st.floats(0.0, 1.0)))
    def test_preserves_nonnegativity(self, x):
        assert (smooth(x) >= 0.0).all()

    @given(hnp.arrays(np.float64, st.integers(3, 64), elements=st.floats(0.0, 1.0)))
    def test_bounded_by_extremes(self, x):
        out = smooth(x)
        assert out.max() <= x.max() + 1e-12
        assert out.min() >= x.min() - 1e-12

    @given(hnp.arrays(np.float64, st.integers(3, 32), elements=st.floats(0.001, 1.0)))
    def test_mass_approximately_preserved(self, x):
        """Boundary renormalization keeps the total within the edge mass."""
        out = smooth(x)
        assert out.sum() == pytest.approx(x.sum(), rel=0.35)
