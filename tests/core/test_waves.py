"""Unit, statistical, and privacy tests for the smooth wave shapes."""

import math

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.general_wave import GeneralWave
from repro.core.pipeline import WaveEstimator
from repro.core.waves import (
    ALL_WAVE_SHAPES,
    CosineWave,
    EpanechnikovWave,
    make_wave,
)
from repro.privacy.audit import audit_continuous_mechanism

SMOOTH_CLASSES = (CosineWave, EpanechnikovWave)


class TestMakeWave:
    def test_all_shapes_constructible(self):
        for shape in ALL_WAVE_SHAPES:
            mech = make_wave(shape, 1.0)
            assert hasattr(mech, "privatize")
            assert hasattr(mech, "transition_matrix")

    def test_trapezoid_family_routed(self):
        assert isinstance(make_wave("square", 1.0), GeneralWave)
        assert isinstance(make_wave("triangle", 1.0), GeneralWave)

    def test_smooth_shapes_routed(self):
        assert isinstance(make_wave("cosine", 1.0), CosineWave)
        assert isinstance(make_wave("epanechnikov", 1.0), EpanechnikovWave)

    def test_unknown_shape(self):
        with pytest.raises(ValueError, match="unknown wave shape"):
            make_wave("sawtooth", 1.0)


class TestSmoothWaveParameters:
    @pytest.mark.parametrize("cls", SMOOTH_CLASSES)
    def test_peak_is_e_eps_q(self, cls):
        wave = cls(1.3)
        assert wave.peak / wave.q == pytest.approx(math.exp(1.3))

    @pytest.mark.parametrize("cls", SMOOTH_CLASSES)
    def test_bump_mass_identity(self, cls):
        wave = cls(1.0)
        assert wave.bump_mass == pytest.approx(1 - (2 * wave.b + 1) * wave.q)

    @pytest.mark.parametrize("cls", SMOOTH_CLASSES)
    def test_pdf_integrates_to_one(self, cls):
        wave = cls(1.0, b=0.25)
        grid = np.linspace(wave.output_low, wave.output_high, 400_001)
        assert np.trapezoid(wave.pdf(0.4, grid), grid) == pytest.approx(1.0, abs=1e-5)

    @pytest.mark.parametrize("cls", SMOOTH_CLASSES)
    def test_cdf_matches_density(self, cls):
        wave = cls(1.0, b=0.2)
        grid = np.linspace(-wave.b, wave.b, 50_001)
        densities = wave.bump_density(grid)
        numeric = np.concatenate(
            [[0.0], np.cumsum((densities[1:] + densities[:-1]) / 2 * np.diff(grid))]
        )
        np.testing.assert_allclose(wave.bump_cdf(grid), numeric, atol=1e-6)

    @pytest.mark.parametrize("cls", SMOOTH_CLASSES)
    def test_cdf_endpoints(self, cls):
        wave = cls(1.0)
        assert wave.bump_cdf(np.array([-wave.b]))[0] == pytest.approx(0.0)
        assert wave.bump_cdf(np.array([wave.b]))[0] == pytest.approx(wave.bump_mass)

    def test_rejects_bad_b(self):
        with pytest.raises(ValueError):
            CosineWave(1.0, b=0.7)


class TestSmoothWaveSampling:
    @pytest.mark.parametrize("cls", SMOOTH_CLASSES)
    def test_empirical_density_matches_pdf(self, cls, rng):
        wave = cls(1.0)
        v = 0.5
        reports = wave.privatize(np.full(400_000, v), rng=rng)
        counts, edges = np.histogram(
            reports, bins=60, range=(wave.output_low, wave.output_high), density=True
        )
        centers = (edges[:-1] + edges[1:]) / 2
        np.testing.assert_allclose(counts, wave.pdf(v, centers), atol=0.06)

    @pytest.mark.parametrize("cls", SMOOTH_CLASSES)
    def test_reports_in_domain(self, cls, rng):
        wave = cls(1.0)
        reports = wave.privatize(rng.random(10_000), rng=rng)
        assert reports.min() >= wave.output_low
        assert reports.max() <= wave.output_high


class TestSmoothWavePrivacy:
    @pytest.mark.parametrize("cls", SMOOTH_CLASSES)
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
    def test_ldp(self, cls, epsilon):
        result = audit_continuous_mechanism(cls(epsilon))
        assert result.satisfied
        assert result.max_ratio == pytest.approx(math.exp(epsilon), rel=1e-6)

    @given(st.floats(0.2, 3.0), st.floats(0.05, 0.5))
    def test_ldp_property_cosine(self, epsilon, b):
        result = audit_continuous_mechanism(
            CosineWave(epsilon, b=b), input_grid=9, output_grid=81
        )
        assert result.satisfied


class TestSmoothWaveMatrix:
    @pytest.mark.parametrize("cls", SMOOTH_CLASSES)
    def test_columns_sum_to_one(self, cls):
        m = cls(1.0).transition_matrix(24, 24)
        np.testing.assert_allclose(m.sum(axis=0), 1.0, atol=1e-9)

    def test_matrix_matches_monte_carlo(self, rng):
        wave = CosineWave(1.0)
        d = 8
        m = wave.transition_matrix(d, d)
        bucket = 2
        values = rng.uniform(bucket / d, (bucket + 1) / d, 300_000)
        counts = wave.bucketize_reports(wave.privatize(values, rng=rng), d)
        np.testing.assert_allclose(counts / counts.sum(), m[:, bucket], atol=0.005)


class TestSmoothWaveReconstruction:
    @pytest.mark.parametrize("shape", ("cosine", "epanechnikov"))
    def test_pipeline_end_to_end(self, shape, beta_values, rng):
        estimator = WaveEstimator(make_wave(shape, 1.0), d=64)
        out = estimator.fit(beta_values, rng=rng)
        assert out.sum() == pytest.approx(1.0)
        from repro.metrics.distances import wasserstein_distance
        from tests.conftest import true_histogram

        assert wasserstein_distance(true_histogram(beta_values, 64), out) < 0.05
