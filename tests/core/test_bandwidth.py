"""Unit tests for bandwidth selection, anchored to the paper's values."""

import numpy as np
import pytest

from repro.core.bandwidth import (
    discrete_bandwidth,
    mutual_information_bound,
    optimal_bandwidth,
)


class TestOptimalBandwidth:
    @pytest.mark.parametrize(
        "epsilon,expected",
        [(1.0, 0.256), (2.0, 0.129), (3.0, 0.064), (4.0, 0.030)],
    )
    def test_paper_figure6_anchors(self, epsilon, expected):
        """b*(eps) values printed in the paper's Figure 6 captions."""
        assert optimal_bandwidth(epsilon) == pytest.approx(expected, abs=5e-4)

    def test_monotone_nonincreasing(self):
        grid = np.linspace(0.05, 8.0, 60)
        values = [optimal_bandwidth(e) for e in grid]
        assert all(a >= b - 1e-12 for a, b in zip(values, values[1:], strict=False))

    def test_limit_small_epsilon_is_half(self):
        assert optimal_bandwidth(1e-6) == pytest.approx(0.5, abs=1e-4)

    def test_limit_large_epsilon_is_zero(self):
        assert optimal_bandwidth(20.0) < 0.01

    def test_always_in_valid_range(self):
        for eps in np.geomspace(1e-3, 10.0, 50):
            assert 0.0 < optimal_bandwidth(eps) <= 0.5 + 1e-9

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            optimal_bandwidth(0.0)


class TestDiscreteBandwidth:
    def test_floor_of_scaled(self):
        assert discrete_bandwidth(1.0, 100) == int(optimal_bandwidth(1.0) * 100)

    def test_zero_for_large_epsilon_small_domain(self):
        assert discrete_bandwidth(6.0, 4) == 0

    def test_grows_with_domain(self):
        assert discrete_bandwidth(1.0, 1024) > discrete_bandwidth(1.0, 64)


class TestMutualInformationBound:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0, 4.0])
    def test_b_star_is_argmax(self, epsilon):
        """The closed-form b* maximizes the bound over a fine grid."""
        b_star = optimal_bandwidth(epsilon)
        best = mutual_information_bound(epsilon, b_star)
        for b in np.linspace(0.01, 0.5, 200):
            assert mutual_information_bound(epsilon, b) <= best + 1e-12

    def test_bound_positive(self):
        assert mutual_information_bound(1.0, 0.25) > 0.0

    def test_rejects_bad_b(self):
        with pytest.raises(ValueError):
            mutual_information_bound(1.0, 0.0)
        with pytest.raises(ValueError):
            mutual_information_bound(1.0, 0.6)
