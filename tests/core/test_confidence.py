"""Tests for bootstrap confidence bands."""

import numpy as np
import pytest

from repro.core.confidence import (
    bootstrap_confidence_bands,
    estimator_confidence_bands,
)
from repro.core.pipeline import SWEstimator
from repro.core.square_wave import SquareWave


@pytest.fixture(scope="module")
def small_problem():
    d = 32
    sw = SquareWave(1.0)
    matrix = sw.transition_matrix(d, d)
    truth = np.random.default_rng(5).dirichlet(np.ones(d) * 5)
    counts = np.random.default_rng(6).multinomial(20_000, matrix @ truth).astype(float)
    return matrix, counts, truth


class TestBootstrapBands:
    def test_band_orders(self, small_problem):
        matrix, counts, _ = small_problem
        bands = bootstrap_confidence_bands(matrix, counts, n_bootstrap=30, rng=0)
        assert (bands.lower <= bands.upper + 1e-12).all()
        assert bands.samples.shape == (30, 32)

    def test_point_estimate_mostly_inside(self, small_problem):
        matrix, counts, _ = small_problem
        bands = bootstrap_confidence_bands(matrix, counts, n_bootstrap=40, rng=0)
        inside = (bands.point >= bands.lower - 1e-9) & (bands.point <= bands.upper + 1e-9)
        assert inside.mean() > 0.9

    def test_model_consistent_coverage(self, small_problem):
        """The parametric-bootstrap guarantee: when reports really are
        generated from the fitted model, the bands cover that model's input
        distribution in most buckets. (Coverage of an *arbitrary* truth is
        not claimed — EMS bias is excluded by design; see module docs.)"""
        matrix, counts, _ = small_problem
        first = bootstrap_confidence_bands(matrix, counts, n_bootstrap=10, rng=0)
        model_truth = first.point
        fresh_counts = (
            np.random.default_rng(9)
            .multinomial(int(counts.sum()), matrix @ model_truth)
            .astype(float)
        )
        bands = bootstrap_confidence_bands(
            matrix, fresh_counts, coverage=0.9, n_bootstrap=60, rng=1
        )
        covered = (model_truth >= bands.lower) & (model_truth <= bands.upper)
        assert covered.mean() > 0.6

    def test_width_shrinks_with_population(self):
        d = 32
        sw = SquareWave(1.0)
        matrix = sw.transition_matrix(d, d)
        truth = np.random.default_rng(2).dirichlet(np.ones(d) * 5)
        widths = []
        for n in (2_000, 50_000):
            counts = np.random.default_rng(3).multinomial(n, matrix @ truth).astype(float)
            bands = bootstrap_confidence_bands(matrix, counts, n_bootstrap=25, rng=4)
            widths.append(bands.width.mean())
        assert widths[1] < widths[0]

    def test_deterministic_with_seed(self, small_problem):
        matrix, counts, _ = small_problem
        a = bootstrap_confidence_bands(matrix, counts, n_bootstrap=10, rng=7)
        b = bootstrap_confidence_bands(matrix, counts, n_bootstrap=10, rng=7)
        np.testing.assert_array_equal(a.lower, b.lower)

    def test_validation(self, small_problem):
        matrix, counts, _ = small_problem
        with pytest.raises(ValueError, match="coverage"):
            bootstrap_confidence_bands(matrix, counts, coverage=1.5)
        with pytest.raises(ValueError, match="n_bootstrap"):
            bootstrap_confidence_bands(matrix, counts, n_bootstrap=1)

    def test_plain_em_mode(self, small_problem):
        matrix, counts, _ = small_problem
        bands = bootstrap_confidence_bands(
            matrix, counts, n_bootstrap=10, smoothing_order=None, rng=0
        )
        assert (bands.lower <= bands.upper + 1e-12).all()


class TestEstimatorBands:
    def test_end_to_end(self, beta_values):
        estimator = SWEstimator(1.0, d=32)
        bands = estimator_confidence_bands(
            estimator, beta_values, n_bootstrap=20, rng=0
        )
        assert bands.coverage == 0.9
        # Bands contain the point estimate and have meaningful width.
        inside = (bands.point >= bands.lower - 1e-9) & (
            bands.point <= bands.upper + 1e-9
        )
        assert inside.mean() > 0.9
        assert (bands.width > 0).all()
        # Calibration: the band width has the same order of magnitude as
        # the bucket-wise deviation of an independent rerun. (Exact rerun
        # coverage is not asserted — EMS regularization pulls bootstrap
        # resamples toward its attractor, shrinking percentile bands.)
        rerun = SWEstimator(1.0, d=32).fit(
            beta_values, rng=np.random.default_rng(123)
        )
        rerun_scale = np.abs(rerun - bands.point).mean()
        assert bands.width.mean() > 0.3 * rerun_scale
        assert bands.width.mean() < 30 * rerun_scale


class TestBandsFromCounts:
    def test_streaming_estimator_bands(self, beta_values):
        """Bands computed from already-ingested counts, no raw values needed."""
        estimator = SWEstimator(1.0, d=32)
        estimator.partial_fit(beta_values, rng=np.random.default_rng(5))
        bands = estimator.confidence_bands(n_bootstrap=20, rng=0)
        assert bands.coverage == 0.9
        assert (bands.lower <= bands.upper + 1e-12).all()
        inside = (bands.point >= bands.lower - 1e-9) & (
            bands.point <= bands.upper + 1e-9
        )
        assert inside.mean() > 0.9

    def test_empty_state_raises(self):
        from repro import EmptyAggregateError

        with pytest.raises(EmptyAggregateError):
            SWEstimator(1.0, d=32).confidence_bands()
