"""Backwards compatibility: v1 feeds, error line numbers, encoder identity.

The checked-in fixture feeds under ``fixtures/`` were written by the v1
protocol (including lines that predate the ``version`` and ``attr``
fields); they must keep decoding to the same values through both the v1
decoders and the version-aware v2 feed decoder, forever.
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.protocol import (
    SWReport,
    decode_batch,
    decode_batch_grouped,
    decode_feed_grouped,
    encode_batch,
)

FIXTURES = Path(__file__).parent / "fixtures"

SINGLE_ATTR_VALUES = [0.125, -0.21640625, 1.0839, 0.5, 0.75]


@pytest.fixture(scope="module")
def single_attr_feed():
    return (FIXTURES / "v1_single_attr.jsonl").read_text()


@pytest.fixture(scope="module")
def multi_attr_feed():
    return (FIXTURES / "v1_multi_attr.jsonl").read_text()


class TestFixtureFeeds:
    def test_v1_decoder(self, single_attr_feed):
        decoded = decode_batch(single_attr_feed, expected_round="fixture-round")
        np.testing.assert_array_equal(decoded, SINGLE_ATTR_VALUES)

    def test_v2_feed_decoder_accepts_v1(self, single_attr_feed):
        round_id, groups = decode_feed_grouped(single_attr_feed)
        assert round_id == "fixture-round"
        assert set(groups) == {"value"}
        assert groups["value"].mechanism == "float"
        np.testing.assert_array_equal(groups["value"].reports, SINGLE_ATTR_VALUES)

    def test_multi_attr_fixture_both_decoders_agree(self, multi_attr_feed):
        v1 = decode_batch_grouped(multi_attr_feed, expected_round="fixture-round")
        _, v2 = decode_feed_grouped(multi_attr_feed, expected_round="fixture-round")
        assert set(v1) == set(v2) == {"income", "age", "value"}
        for attr in v1:
            np.testing.assert_array_equal(v1[attr], v2[attr].reports)

    def test_pre_attr_lines_decode_to_default(self, multi_attr_feed):
        groups = decode_batch_grouped(multi_attr_feed)
        np.testing.assert_array_equal(groups["value"], [0.3])

    def test_collection_server_serves_v1_fixture(self, single_attr_feed):
        """An old on-disk feed ingests straight into the generic server."""
        from repro.protocol import CollectionServer

        server = CollectionServer("fixture-round", "sw-ems", 1.0, 16)
        assert server.ingest_feed(single_attr_feed) == len(SINGLE_ATTR_VALUES)


class TestLineNumberedErrors:
    def test_malformed_line_reports_position(self):
        feed = '{"round_id":"r","value":0.1,"version":1}\nnot json at all\n'
        with pytest.raises(ValueError, match="line 2.*malformed"):
            decode_batch(feed)

    def test_missing_field_reports_position(self):
        feed = '{"round_id":"r","value":0.1,"version":1}\n\n{"value":0.2}'
        with pytest.raises(ValueError, match="line 3"):
            decode_batch(feed)

    def test_round_mix_reports_position(self):
        feed = (
            '{"round_id":"a","value":0.1,"version":1}\n'
            '{"round_id":"b","value":0.2,"version":1}'
        )
        with pytest.raises(ValueError, match="line 2.*mixed"):
            decode_batch(feed, expected_round="a")

    def test_bad_version_reports_position(self):
        feed = '{"round_id":"r","value":0.1,"version":99}'
        with pytest.raises(ValueError, match="line 1.*version"):
            decode_batch(feed)

    def test_single_line_api_keeps_plain_message(self):
        with pytest.raises(ValueError, match="^malformed"):
            SWReport.from_json('{"value":0.1}')


class TestVectorizedEncoder:
    def test_byte_identical_to_dataclass_path(self, rng):
        """Regression: the array-pass encoder must match per-report
        ``SWReport(...).to_json()`` byte for byte."""
        values = np.concatenate([
            rng.random(200),
            np.array([0.0, 1.0, 0.5, 1e-17, 1.25e300, -3.5]),
        ])
        for attr in ("value", "income"):
            fast = encode_batch("round/7 \"x\"", values, attr=attr)
            slow = "\n".join(
                SWReport("round/7 \"x\"", float(v), attr=attr).to_json()
                for v in values
            )
            assert fast == slow

    def test_roundtrip_via_decoder(self, rng):
        values = rng.random(50)
        decoded = decode_batch(encode_batch("r", values), expected_round="r")
        np.testing.assert_array_equal(decoded, values)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            encode_batch("r", np.zeros((2, 2)))


class TestEnvelopeFormat:
    def test_v2_line_shape(self):
        from repro.protocol import ReportEnvelope

        line = ReportEnvelope("r", "olh", [1, 2, 3]).to_json()
        data = json.loads(line)
        assert data == {
            "round_id": "r", "mech": "olh", "payload": [1, 2, 3], "version": 2
        }
        assert ReportEnvelope.from_json(line) == ReportEnvelope("r", "olh", [1, 2, 3])

    def test_v2_attr_roundtrip(self):
        from repro.protocol import ReportEnvelope

        envelope = ReportEnvelope("r", "float", 0.5, attr="income")
        assert ReportEnvelope.from_json(envelope.to_json()) == envelope

    def test_v1_line_becomes_float_envelope(self):
        from repro.protocol import ReportEnvelope

        envelope = ReportEnvelope.from_json(SWReport("r", 0.25).to_json())
        assert envelope.mechanism == "float"
        assert envelope.payload == 0.25
        assert envelope.version == 1

    def test_string_version_coerced_like_v1(self):
        """Previously-accepted v1 lines with a string version keep decoding."""
        from repro.protocol import ReportEnvelope

        line = '{"round_id":"r","value":0.5,"version":"1"}'
        assert SWReport.from_json(line).version == 1
        assert ReportEnvelope.from_json(line).mechanism == "float"
        _, groups = decode_feed_grouped(line)
        np.testing.assert_array_equal(groups["value"].reports, [0.5])

    def test_unknown_version_rejected(self):
        from repro.protocol import ReportEnvelope

        with pytest.raises(ValueError, match="version"):
            ReportEnvelope.from_json('{"round_id":"r","mech":"float","payload":1,"version":3}')

    def test_mixed_mechanism_per_attr_rejected(self):
        from repro.protocol import ReportEnvelope

        feed = "\n".join([
            ReportEnvelope("r", "float", 0.5).to_json(),
            ReportEnvelope("r", "category", 3).to_json(),
        ])
        with pytest.raises(ValueError, match="mixes mechanism"):
            decode_feed_grouped(feed)
