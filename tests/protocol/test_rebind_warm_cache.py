"""Warm-cache survival across merge → rebind → re-merge cycles.

The estimate tier of a sharded deployment never rebuilds its servers:
each round it folds shard snapshots into a freshly merged estimator and
``rebind_estimator``s it into the persistent :class:`CollectionServer`.
These tests pin the cache contract that makes that cheap — an unchanged
re-merge must serve the cached posterior without a solve, a small delta
must warm-start EM from it — and that the contract holds when estimates
race rebinds on threads, as they do under the service's solve pool.
"""

import threading

import numpy as np
import pytest

from repro.api import make_estimator
from repro.protocol import CollectionServer

D = 32


def _shard_servers(n_shards, seed, n=400):
    rng = np.random.default_rng(seed)
    shards = []
    for _ in range(n_shards):
        shard = CollectionServer("r", "sw-ems", 1.0, D)
        shard.ingest_reports(shard.privatize(rng.random(n), rng=rng))
        shards.append(shard)
    return shards


def _merge_snapshot(shards):
    """The merge tier's move: fold shard states into a fresh estimator."""
    merged = make_estimator("sw-ems", 1.0, D)
    for shard in shards:
        snapshot = CollectionServer.from_state(shard.to_state())
        merged.merge(snapshot._estimator)
    return merged


class TestCacheSurvivesRemerge:
    def test_identical_remerge_skips_the_solve(self):
        shards = _shard_servers(3, seed=0)
        server = CollectionServer("r", "sw-ems", 1.0, D)
        server.rebind_estimator(_merge_snapshot(shards))
        first = server.estimate()

        # Round two: same shards re-merged into a brand-new estimator.
        remerged = _merge_snapshot(shards)
        server.rebind_estimator(remerged)
        second = server.estimate()

        np.testing.assert_array_equal(first, second)
        # A cache hit never touches the rebound estimator's solver.
        assert getattr(remerged, "result_", None) is None

    def test_cache_survives_many_cycles(self):
        shards = _shard_servers(2, seed=1)
        server = CollectionServer("r", "sw-ems", 1.0, D)
        server.rebind_estimator(_merge_snapshot(shards))
        reference = server.estimate()
        for _ in range(5):
            server.rebind_estimator(_merge_snapshot(shards))
            np.testing.assert_array_equal(server.estimate(), reference)

    def test_delta_remerge_warm_starts(self):
        """A re-merge with one extra shard solves warm: strictly fewer EM
        iterations than the same state solved cold."""
        base = _shard_servers(3, seed=2, n=1000)
        server = CollectionServer("r", "sw-ems", 1.0, D)
        server.rebind_estimator(_merge_snapshot(base))
        server.estimate()  # populate the posterior cache

        delta = _shard_servers(1, seed=99, n=100)
        grown = _merge_snapshot(base + delta)
        server.rebind_estimator(grown)
        warm_estimate = server.estimate()
        warm_iterations = grown.result_.iterations

        cold_server = CollectionServer("r", "sw-ems", 1.0, D)
        cold_est = _merge_snapshot(base + delta)
        cold_server.rebind_estimator(cold_est)
        cold_estimate = cold_server.estimate()
        cold_iterations = cold_est.result_.iterations

        assert warm_iterations < cold_iterations
        # Same fixed point: both stop within the EM convergence tolerance
        # of it, so the posteriors agree to solver precision, not bit-level.
        np.testing.assert_allclose(warm_estimate, cold_estimate, atol=5e-3)

    def test_non_incremental_server_still_rebinds(self):
        shards = _shard_servers(2, seed=3)
        server = CollectionServer("r", "sw-ems", 1.0, D, incremental=False)
        server.rebind_estimator(_merge_snapshot(shards))
        first = server.estimate()
        remerged = _merge_snapshot(shards)
        server.rebind_estimator(remerged)
        np.testing.assert_allclose(server.estimate(), first)
        # No cache in non-incremental mode: the solve really ran.
        assert remerged.result_ is not None


class TestConcurrentRebindEstimate:
    def test_estimates_race_rebind_cycles_safely(self):
        """Readers racing merge→rebind cycles always see a consistent
        posterior — never a torn state, an exception, or a stale shape."""
        shards = _shard_servers(2, seed=4, n=500)
        server = CollectionServer("r", "sw-ems", 1.0, D)
        server.rebind_estimator(_merge_snapshot(shards))
        server.estimate()
        errors: list[Exception] = []
        done = threading.Event()

        def rebinder():
            rng = np.random.default_rng(5)
            try:
                for i in range(10):
                    extra = CollectionServer("r", "sw-ems", 1.0, D)
                    extra.ingest_reports(
                        extra.privatize(rng.random(200), rng=rng)
                    )
                    shards.append(extra)
                    server.rebind_estimator(_merge_snapshot(shards))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                done.set()

        def estimator():
            try:
                while not done.is_set():
                    estimate = server.estimate()
                    assert estimate.shape == (D,)
                    assert np.all(np.isfinite(estimate))
                    assert estimate.sum() == pytest.approx(1.0)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=rebinder)] + [
            threading.Thread(target=estimator) for _ in range(3)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert errors == []
        assert not any(t.is_alive() for t in threads)
        # The final state is the full 12-shard merge, solved consistently.
        final = server.estimate()
        expected_reports = 2 * 500 + 10 * 200
        assert server.n_reports == expected_reports
        assert final.sum() == pytest.approx(1.0)
