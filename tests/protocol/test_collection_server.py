"""Tests for the mechanism-agnostic CollectionServer (and the SWServer shim)."""

import numpy as np
import pytest

from repro.api.errors import EmptyAggregateError
from repro.api.registry import list_estimators
from repro.protocol import CollectionServer, SWServer, encode_batch


def reportable_values(spec, rng, n=400, d=64):
    """Raw client values appropriate for one registry family."""
    if spec.kind == "frequency":
        return rng.integers(0, d, size=n)
    if spec.kind == "marginals":
        return rng.random((n, 2))
    return rng.random(n)


ALL_SPECS = list_estimators()


class TestRegistryRoundTrip:
    """Acceptance: every registered family completes privatize → encode →
    decode → ingest → estimate through the generic server, on both wires."""

    @pytest.mark.parametrize("spec", ALL_SPECS, ids=[s.name for s in ALL_SPECS])
    @pytest.mark.parametrize("wire", ["frame", "jsonl"])
    def test_full_round_trip(self, spec, wire, rng):
        server = CollectionServer("round-1", spec.name, 1.0, 64)
        values = reportable_values(spec, rng)
        reports = server.privatize(values, rng=rng)
        feed = server.encode(reports, format=wire)
        assert server.ingest_feed(feed) == values.shape[0]
        estimate = server.estimate()
        if spec.kind == "scalar":
            assert 0.0 <= estimate <= 1.0
        elif spec.kind == "marginals":
            assert all(np.isfinite(m).all() for m in estimate)
        else:
            assert np.isfinite(np.asarray(estimate)).all()

    @pytest.mark.parametrize(
        "spec",
        [s for s in ALL_SPECS if s.kind != "marginals"],
        ids=[s.name for s in ALL_SPECS if s.kind != "marginals"],
    )
    def test_wire_equals_direct_ingest(self, spec, rng):
        """Decoding its own encoded feed must not change the estimate."""
        direct = CollectionServer("r", spec.name, 1.0, 64)
        wired = CollectionServer("r", spec.name, 1.0, 64)
        reports = direct.privatize(reportable_values(spec, rng), rng=rng)
        direct.ingest_reports(reports)
        wired.ingest_feed(wired.encode(reports, format="frame"))
        left, right = direct.estimate(), wired.estimate()
        if spec.kind == "scalar":
            assert left == pytest.approx(right)
        else:
            np.testing.assert_allclose(left, right)


class TestRoundScoping:
    def test_foreign_round_frame_rejected(self, rng):
        a = CollectionServer("round-a", "sw-ems", 1.0, 32)
        feed = a.encode(a.privatize(rng.random(10), rng=rng))
        b = CollectionServer("round-b", "sw-ems", 1.0, 32)
        with pytest.raises(ValueError, match="round"):
            b.ingest_feed(feed)

    def test_foreign_attr_rejected(self, rng):
        a = CollectionServer("r", "sw-ems", 1.0, 32, attr="income")
        feed = a.encode(a.privatize(rng.random(10), rng=rng))
        b = CollectionServer("r", "sw-ems", 1.0, 32, attr="age")
        with pytest.raises(ValueError, match="attribute"):
            b.ingest_feed(feed)

    def test_codec_mismatch_rejected(self, rng):
        grr = CollectionServer("r", "grr", 1.0, 32)
        feed = grr.encode(grr.privatize(rng.integers(0, 32, 10), rng=rng))
        sw = CollectionServer("r", "sw-ems", 1.0, 32)
        with pytest.raises(ValueError, match="payloads"):
            sw.ingest_feed(feed)

    def test_non_frame_bytes_rejected(self):
        server = CollectionServer("r", "sw-ems", 1.0, 32)
        with pytest.raises(ValueError, match="magic"):
            server.ingest_feed(b"junk bytes")

    def test_empty_estimate_names_round_and_attr(self):
        server = CollectionServer("r7", "sw-ems", 1.0, 32, attr="income")
        with pytest.raises(EmptyAggregateError, match=r"'r7'.*'income'"):
            server.estimate()

    def test_empty_error_is_runtime_error(self):
        server = CollectionServer("r", "grr", 1.0, 32)
        with pytest.raises(RuntimeError):
            server.estimate()


class TestIncrementalEstimate:
    def test_skip_when_nothing_new(self, rng):
        server = CollectionServer("r", "sw-ems", 1.0, 64)
        server.ingest_reports(server.privatize(rng.random(2000), rng=rng))
        first = server.estimate()
        iterations = server.estimator.result_.iterations
        second = server.estimate()
        np.testing.assert_array_equal(first, second)
        # No new solve ran: the diagnostics are still the first solve's.
        assert server.estimator.result_.iterations == iterations

    def test_skip_returns_defensive_copy(self, rng):
        server = CollectionServer("r", "sw-ems", 1.0, 64)
        server.ingest_reports(server.privatize(rng.random(2000), rng=rng))
        first = server.estimate()
        first[:] = -1.0
        np.testing.assert_array_equal(server.estimate() >= 0, True)

    def test_warm_start_converges_faster_and_agrees(self, beta_values):
        gen = np.random.default_rng(5)
        warm = CollectionServer("r", "sw-ems", 1.0, 64)
        warm.ingest_reports(warm.privatize(beta_values, rng=gen))
        warm.estimate()
        cold_iterations = warm.estimator.result_.iterations
        delta = warm.privatize(beta_values[:500], rng=gen)
        warm.ingest_reports(delta)
        warm_estimate = warm.estimate()
        warm_iterations = warm.estimator.result_.iterations
        assert warm_iterations < cold_iterations

        cold = CollectionServer("r", "sw-ems", 1.0, 64, incremental=False)
        cold._estimator._counts = warm._estimator._counts.copy()
        np.testing.assert_allclose(
            warm_estimate, cold.estimate(), atol=2e-3
        )

    def test_incremental_false_always_solves_cold(self, rng):
        server = CollectionServer("r", "sw-ems", 1.0, 64, incremental=False)
        server.ingest_reports(server.privatize(rng.random(2000), rng=rng))
        first_iterations_estimate = server.estimate()
        iterations = server.estimator.result_.iterations
        server.estimate()
        # A cold re-solve from the uniform prior runs the same iterations.
        assert server.estimator.result_.iterations == iterations
        np.testing.assert_allclose(
            first_iterations_estimate, server.estimate()
        )

    def test_reset_and_reingest_invalidates_cache(self, rng):
        """Same report count, different content: the cache must not serve
        the old posterior (it is keyed on state content, not count)."""
        server = CollectionServer("r", "grr", 1.0, 8)
        low = np.zeros(500, dtype=np.int64)
        high = np.full(500, 7, dtype=np.int64)
        server.ingest_reports(server.privatize(low, rng=rng))
        first = server.estimate()
        server.estimator.reset()
        server.ingest_reports(server.privatize(high, rng=rng))
        second = server.estimate()
        assert server.n_reports == 500
        assert np.argmax(first) != np.argmax(second)

    def test_state_roundtrip_preserves_incremental_flag(self, rng):
        server = CollectionServer("r", "grr", 1.0, 8, incremental=False)
        server.ingest_reports(server.privatize(np.zeros(10, dtype=np.int64), rng=rng))
        assert CollectionServer.from_state(server.to_state()).incremental is False

    def test_non_em_families_skip_solve_too(self, rng):
        server = CollectionServer("r", "grr", 1.0, 16)
        server.ingest_reports(server.privatize(rng.integers(0, 16, 500), rng=rng))
        first = server.estimate()
        second = server.estimate()
        np.testing.assert_array_equal(first, second)


class TestMergeAndState:
    def test_shard_merge_equals_union(self, rng):
        shards = []
        union = CollectionServer("r", "grr", 1.0, 16)
        batches = []
        for _ in range(3):
            shard = CollectionServer("r", "grr", 1.0, 16)
            reports = shard.privatize(rng.integers(0, 16, 300), rng=rng)
            shard.ingest_reports(reports)
            batches.append(reports)
            shards.append(shard)
        merged = shards[0].merge(shards[1]).merge(shards[2])
        for batch in batches:
            union.ingest_reports(batch)
        np.testing.assert_allclose(merged.estimate(), union.estimate())

    def test_merge_checks_round_attr_and_type(self):
        a = CollectionServer("r", "grr", 1.0, 16)
        with pytest.raises(ValueError, match="round"):
            a.merge(CollectionServer("other", "grr", 1.0, 16))
        with pytest.raises(ValueError, match="attribute"):
            a.merge(CollectionServer("r", "grr", 1.0, 16, attr="x"))
        with pytest.raises(TypeError):
            a.merge(object())

    def test_state_roundtrip(self, rng):
        server = CollectionServer("r", "olh", 1.0, 16, attr="income")
        server.ingest_reports(server.privatize(rng.integers(0, 16, 200), rng=rng))
        rebuilt = CollectionServer.from_state(server.to_state())
        assert rebuilt.round_id == "r"
        assert rebuilt.attr == "income"
        assert rebuilt.mechanism_name == "olh"
        assert rebuilt.n_reports == 200
        np.testing.assert_allclose(rebuilt.estimate(), server.estimate())

    def test_repr_names_mechanism_and_codec(self):
        server = CollectionServer("r", "olh", 1.0, 16)
        assert "olh" in repr(server)


class TestSWServerShim:
    def test_construction_warns_deprecation(self):
        with pytest.warns(DeprecationWarning, match="CollectionServer"):
            SWServer("r", epsilon=1.0, d=32)

    def test_shim_is_a_collection_server(self):
        with pytest.warns(DeprecationWarning):
            server = SWServer("r", epsilon=1.0, d=32)
        assert isinstance(server, CollectionServer)
        assert server.mechanism_name == "sw-ems"
        assert server.codec.name == "float"

    def test_shim_matches_generic_server(self, rng):
        """The shim and CollectionServer('sw-ems') agree bit for bit."""
        with pytest.warns(DeprecationWarning):
            shim = SWServer("r", epsilon=1.0, d=32)
        generic = CollectionServer("r", "sw-ems", 1.0, 32)
        reports = generic.privatize(rng.random(1000), rng=rng)
        shim.ingest_values(reports)
        generic.ingest_reports(reports)
        np.testing.assert_array_equal(shim.estimate(), generic.estimate())

    def test_shim_speaks_v2_feeds_too(self, rng):
        with pytest.warns(DeprecationWarning):
            shim = SWServer("r", epsilon=1.0, d=32)
        feed = shim.encode(shim.privatize(rng.random(50), rng=rng))
        assert shim.ingest_feed(feed) == 50
