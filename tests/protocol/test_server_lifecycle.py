"""Concurrency and error-surfacing contracts of the collection server.

The service tier (``repro.service``) ingests on shard worker threads
while estimates run on a solve pool; these tests pin the primitives
that make that safe: locked ingest/estimate/merge interleavings,
``rebind_estimator``, and ``estimate_rounds``'s structured per-key
failures.
"""

import threading

import numpy as np
import pytest

from repro.api.errors import EmptyAggregateError
from repro.protocol import CollectionServer, EstimateFailure
from repro.protocol.server import estimate_rounds


def seeded_batches(seed, n_batches=8, n=250, d=32):
    rng = np.random.default_rng(seed)
    scratch = CollectionServer("r", "olh", 1.0, d)
    return [
        scratch.privatize(rng.integers(0, d, size=n), rng=rng)
        for _ in range(n_batches)
    ]


class TestConcurrentIngestEstimate:
    def test_parallel_ingest_matches_sequential(self):
        batches = seeded_batches(3, n_batches=12)
        reference = CollectionServer("r", "olh", 1.0, 32)
        shared = CollectionServer("r", "olh", 1.0, 32)
        for batch in batches:
            reference.ingest_reports(batch)

        def worker(part):
            for batch in part:
                shared.ingest_reports(batch)

        threads = [
            threading.Thread(target=worker, args=(batches[i::4],))
            for i in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert shared.n_reports == reference.n_reports
        # OLH ingest is a float accumulation, so thread order moves the
        # last bits; the population estimate must agree to rounding.
        np.testing.assert_allclose(
            shared.estimate(), reference.estimate(), rtol=1e-10, atol=1e-12
        )

    def test_estimates_interleaved_with_ingest_never_error(self):
        """Readers racing writers see *some* consistent prefix, never a
        torn state or an exception."""
        batches = seeded_batches(5, n_batches=20, n=200)
        server = CollectionServer("r", "sw-ems", 1.0, 32)
        server.ingest_reports(
            server.privatize(np.random.default_rng(0).random(200))
        )
        errors: list[Exception] = []
        done = threading.Event()

        def ingester():
            scratch = CollectionServer("r", "sw-ems", 1.0, 32)
            rng = np.random.default_rng(1)
            try:
                for _ in range(20):
                    server.ingest_reports(
                        scratch.privatize(rng.random(200), rng=rng)
                    )
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)
            finally:
                done.set()

        def estimator():
            try:
                while not done.is_set():
                    estimate = server.estimate()
                    assert np.all(np.isfinite(estimate))
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=ingester)] + [
            threading.Thread(target=estimator) for _ in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        assert server.n_reports == 200 * 21

    def test_concurrent_merges_do_not_deadlock(self):
        """Two servers merged in opposite directions concurrently: the
        lock-ordering in merge() must prevent the classic AB/BA deadlock."""
        a = CollectionServer("r", "olh", 1.0, 16)
        b = CollectionServer("r", "olh", 1.0, 16)
        rng = np.random.default_rng(2)
        for server in (a, b):
            server.ingest_reports(
                server.privatize(rng.integers(0, 16, size=100), rng=rng)
            )
        barrier = threading.Barrier(2)
        errors: list[Exception] = []

        def merge(dst, src):
            try:
                barrier.wait(timeout=5)
                for _ in range(50):
                    dst.merge(src)
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        t1 = threading.Thread(target=merge, args=(a, b))
        t2 = threading.Thread(target=merge, args=(b, a))
        t1.start(); t2.start()
        t1.join(timeout=30); t2.join(timeout=30)
        assert not t1.is_alive() and not t2.is_alive(), "merge deadlocked"
        assert errors == []


class TestRebindEstimator:
    def test_rebind_keeps_cache_and_swaps_state(self):
        server = CollectionServer("r", "sw-ems", 1.0, 32)
        rng = np.random.default_rng(4)
        server.ingest_reports(server.privatize(rng.random(500), rng=rng))
        first = server.estimate()
        assert server._cached is not None
        # A merged replacement with identical params adopts the posterior.
        replacement = CollectionServer.from_state(server.to_state())
        server.rebind_estimator(replacement._estimator)
        second = server.estimate()
        np.testing.assert_array_equal(first, second)

    def test_rebind_rejects_different_family(self):
        sw = CollectionServer("r", "sw-ems", 1.0, 32)
        olh = CollectionServer("r", "olh", 1.0, 32)
        with pytest.raises(ValueError, match="cannot rebind"):
            sw.rebind_estimator(olh._estimator)


class TestEstimateRoundsErrors:
    def build(self, with_empty=True):
        rng = np.random.default_rng(11)
        servers = {}
        for name in ("alpha", "beta"):
            server = CollectionServer("r", "sw-ems", 1.0, 32, attr=name)
            server.ingest_reports(server.privatize(rng.random(400), rng=rng))
            servers[name] = server
        if with_empty:
            servers["hollow"] = CollectionServer("r", "sw-ems", 1.0, 32)
        return servers

    def test_return_mode_surfaces_structured_failures(self):
        servers = self.build()
        results = estimate_rounds(servers, on_error="return")
        assert list(results) == ["alpha", "beta", "hollow"]
        assert isinstance(results["alpha"], np.ndarray)
        failure = results["hollow"]
        assert isinstance(failure, EstimateFailure)
        assert failure.key == "hollow"
        assert isinstance(failure.error, EmptyAggregateError)
        assert "no reports" in failure.message
        payload = failure.to_dict()
        assert payload["key"] == "hollow"
        assert payload["type"] == "EmptyAggregateError"
        assert "no reports" in payload["message"]

    def test_raise_mode_still_solves_surviving_rounds_first(self):
        """The failing key must not cost the healthy keys their solve: their
        posteriors are cached before the raise."""
        servers = self.build()
        with pytest.raises(EmptyAggregateError, match="no reports ingested"):
            estimate_rounds(servers)
        assert servers["alpha"]._cached is not None
        assert servers["beta"]._cached is not None

    def test_return_mode_with_no_failures_matches_raise_mode(self):
        servers = self.build(with_empty=False)
        returned = estimate_rounds(servers, on_error="return")
        for server in servers.values():
            server._cached = None
            server._cached_key = None
        raised = estimate_rounds(servers)
        for name in servers:
            np.testing.assert_allclose(
                returned[name], raised[name], rtol=1e-12, atol=1e-14
            )

    def test_invalid_on_error_rejected(self):
        with pytest.raises(ValueError, match="on_error"):
            estimate_rounds(self.build(), on_error="ignore")

    def test_empty_mapping_is_empty_result(self):
        assert estimate_rounds({}) == {}
