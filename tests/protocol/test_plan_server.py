"""Tests for PlanServer: serving a whole analysis plan off one mixed feed."""

import numpy as np
import pytest

from repro.api.errors import EmptyAggregateError
from repro.protocol import PlanServer
from repro.tasks import (
    AnalysisPlan,
    AttributeSpec,
    Distribution,
    Mean,
    Quantiles,
    Session,
)


@pytest.fixture(scope="module")
def plan():
    return AnalysisPlan(
        epsilon=2.0,
        attributes=(
            AttributeSpec(name="income", low=0.0, high=100_000.0),
            AttributeSpec(name="age", low=18.0, high=90.0),
        ),
        tasks=(
            Distribution(attribute="income"),
            Quantiles(attribute="income", quantiles=(0.5,)),
            Mean(attribute="age"),
        ),
    )


@pytest.fixture(scope="module")
def population():
    gen = np.random.default_rng(11)
    n = 30_000
    return {
        "income": gen.gamma(3.0, 9_000.0, n).clip(0, 100_000),
        "age": gen.normal(45.0, 12.0, n).clip(18, 90),
    }


@pytest.fixture(scope="module")
def feeds(plan, population):
    """One frame and one JSONL feed of the same privatized round."""
    gen = np.random.default_rng(3)
    session = Session(plan)
    reports = session.privatize(population, rng=gen)
    return (
        session.to_feed(reports, "round-1", format="frame"),
        session.to_feed(reports, "round-1", format="jsonl"),
    )


class TestIngestAndReport:
    @pytest.mark.parametrize("which", [0, 1], ids=["frame", "jsonl"])
    def test_mixed_feed_serves_every_task(self, plan, population, feeds, which):
        server = PlanServer(plan, "round-1")
        count = server.ingest_feed(feeds[which])
        assert count == population["income"].size
        assert sum(server.n_reports.values()) == count
        report = server.report()
        assert set(report.keys()) == {
            "distribution:income", "quantiles:income", "mean:age"
        }
        mean_age = report["mean:age"].value
        assert mean_age == pytest.approx(population["age"].mean(), abs=2.0)

    def test_both_wires_agree(self, plan, feeds):
        from_frame = PlanServer(plan, "round-1")
        from_lines = PlanServer(plan, "round-1")
        from_frame.ingest_feed(feeds[0])
        from_lines.ingest_feed(feeds[1])
        np.testing.assert_allclose(
            from_frame.estimate("income"), from_lines.estimate("income")
        )

    def test_round_scoping(self, plan, feeds):
        server = PlanServer(plan, "another-round")
        with pytest.raises(ValueError, match="round"):
            server.ingest_feed(feeds[0])

    def test_unknown_attribute_rejected(self, plan, rng):
        from repro.protocol import encode_frame

        server = PlanServer(plan, "round-1")
        foreign = encode_frame("round-1", rng.random(5), "float", attr="height")
        with pytest.raises(ValueError, match="undeclared"):
            server.ingest_feed(foreign)

    def test_empty_report_names_round_and_attribute(self, plan):
        server = PlanServer(plan, "round-9")
        with pytest.raises(EmptyAggregateError, match=r"'round-9'.*'income'"):
            server.report()
        with pytest.raises(EmptyAggregateError, match=r"'round-9'.*'income'"):
            server.estimate("income")

    def test_unknown_attr_estimate_rejected(self, plan):
        server = PlanServer(plan, "r")
        with pytest.raises(ValueError, match="declares no attribute"):
            server.estimate("height")

    def test_per_attribute_estimates_are_incremental(self, plan, feeds):
        server = PlanServer(plan, "round-1")
        server.ingest_feed(feeds[0])
        first = server.estimate("income")
        estimator = server.server("income").estimator
        iterations = estimator.result_.iterations
        second = server.estimate("income")
        np.testing.assert_array_equal(first, second)
        assert estimator.result_.iterations == iterations


class TestShardedPlanServing:
    def test_shard_merge_equals_single_server(self, plan, population):
        gen = np.random.default_rng(21)
        session = Session(plan)
        arrays = {k: np.asarray(v) for k, v in population.items()}
        halves = [
            {k: v[: v.size // 2] for k, v in arrays.items()},
            {k: v[v.size // 2 :] for k, v in arrays.items()},
        ]
        feeds = [
            Session(plan).to_feed(session.privatize(half, rng=gen), "r")
            for half in halves
        ]
        shard_a, shard_b = PlanServer(plan, "r"), PlanServer(plan, "r")
        shard_a.ingest_feed(feeds[0])
        shard_b.ingest_feed(feeds[1])
        union = PlanServer(plan, "r")
        for feed in feeds:
            union.ingest_feed(feed)
        merged = shard_a.merge(shard_b)
        np.testing.assert_allclose(
            merged.estimate("income"), union.estimate("income")
        )

    def test_merge_checks_round_and_type(self, plan):
        server = PlanServer(plan, "r")
        with pytest.raises(ValueError, match="round"):
            server.merge(PlanServer(plan, "other"))
        with pytest.raises(TypeError):
            server.merge(object())

    def test_state_roundtrip(self, plan, feeds):
        server = PlanServer(plan, "round-1")
        server.ingest_feed(feeds[0])
        rebuilt = PlanServer.from_state(server.to_state())
        assert rebuilt.round_id == "round-1"
        assert rebuilt.n_reports == server.n_reports
        np.testing.assert_allclose(
            rebuilt.estimate("income"), server.estimate("income")
        )

    def test_repr_names_mechanisms(self, plan):
        assert "income" in repr(PlanServer(plan, "r"))
