"""Unit and integration tests for the client/server protocol layer."""

import numpy as np
import pytest

from repro.metrics.distances import wasserstein_distance
from repro.protocol import (
    DEFAULT_ATTR,
    PROTOCOL_VERSION,
    SWClient,
    SWReport,
    SWServer,
    decode_batch,
    decode_batch_grouped,
    encode_batch,
)


class TestMessages:
    def test_json_roundtrip(self):
        report = SWReport("round-1", 0.42)
        assert SWReport.from_json(report.to_json()) == report

    def test_version_stamped(self):
        assert SWReport("r", 0.0).version == PROTOCOL_VERSION

    def test_rejects_unknown_version(self):
        bad = '{"round_id": "r", "value": 0.1, "version": 99}'
        with pytest.raises(ValueError, match="version"):
            SWReport.from_json(bad)

    def test_rejects_malformed(self):
        with pytest.raises(ValueError, match="malformed"):
            SWReport.from_json('{"value": 0.1}')

    def test_rejects_nonfinite(self):
        with pytest.raises(ValueError, match="finite"):
            SWReport.from_json('{"round_id": "r", "value": NaN}')

    def test_batch_roundtrip(self, rng):
        values = rng.random(100)
        payload = encode_batch("r7", values)
        decoded = decode_batch(payload, expected_round="r7")
        np.testing.assert_allclose(decoded, values)

    def test_batch_round_mismatch(self, rng):
        payload = encode_batch("round-a", rng.random(3))
        with pytest.raises(ValueError, match="mixed"):
            decode_batch(payload, expected_round="round-b")

    def test_empty_payload_rejected(self):
        with pytest.raises(ValueError, match="no reports"):
            decode_batch("\n\n")


class TestAttributeField:
    def test_defaults_to_value(self):
        assert SWReport("r", 0.1).attr == DEFAULT_ATTR == "value"

    def test_attr_roundtrip(self):
        report = SWReport("r", 0.25, attr="income")
        assert SWReport.from_json(report.to_json()) == report

    def test_default_attr_keeps_old_wire_format(self):
        """Single-attribute lines are byte-identical to the pre-attr protocol."""
        line = SWReport("r", 0.5).to_json()
        assert "attr" not in line

    def test_decodes_pre_attr_lines(self):
        """Lines written before the field existed decode to the default."""
        old = '{"round_id": "r", "value": 0.1, "version": 1}'
        assert SWReport.from_json(old).attr == DEFAULT_ATTR

    def test_expected_attr_accepts_matching(self, rng):
        payload = encode_batch("r", rng.random(5), attr="age")
        assert decode_batch(payload, expected_round="r", expected_attr="age").size == 5

    def test_expected_attr_rejects_mixed_feed(self, rng):
        payload = "\n".join(
            [encode_batch("r", rng.random(3), attr="age"),
             encode_batch("r", rng.random(2), attr="income")]
        )
        with pytest.raises(ValueError, match="attribute.*mixed"):
            decode_batch(payload, expected_round="r", expected_attr="age")

    def test_grouped_decode(self, rng):
        ages, incomes = rng.random(4), rng.random(6)
        payload = "\n".join(
            [encode_batch("r", ages, attr="age"),
             encode_batch("r", incomes, attr="income")]
        )
        groups = decode_batch_grouped(payload, expected_round="r")
        assert set(groups) == {"age", "income"}
        np.testing.assert_allclose(groups["age"], ages)
        np.testing.assert_allclose(groups["income"], incomes)

    def test_grouped_decode_checks_round(self, rng):
        payload = encode_batch("round-a", rng.random(3), attr="age")
        with pytest.raises(ValueError, match="mixed"):
            decode_batch_grouped(payload, expected_round="round-b")

    def test_grouped_decode_empty_rejected(self):
        with pytest.raises(ValueError, match="no reports"):
            decode_batch_grouped("  \n ")

    def test_server_rejects_foreign_attribute_batch(self, rng):
        """A mixed multi-attribute feed cannot silently fold into one round."""
        server = SWServer("r", epsilon=1.0, d=32)
        low = server.mechanism.output_low
        payload = encode_batch("r", np.full(3, low + 0.1), attr="income")
        with pytest.raises(ValueError, match="attribute"):
            server.ingest_batch(payload)

    def test_server_rejects_foreign_attribute_report(self):
        server = SWServer("r", epsilon=1.0, d=32)
        with pytest.raises(ValueError, match="attribute"):
            server.ingest(SWReport("r", 0.1, attr="income"))

    def test_server_with_matching_attr_accepts(self, rng):
        client = SWClient("r", epsilon=1.0)
        server = SWServer("r", epsilon=1.0, d=32, attr="income")
        reports = client.mechanism.privatize(rng.random(10), rng=rng)
        assert server.ingest_batch(encode_batch("r", reports, attr="income")) == 10

    def test_server_attr_survives_state_roundtrip(self):
        server = SWServer("r", epsilon=1.0, d=32, attr="income")
        rebuilt = SWServer.from_state(server.to_state())
        assert rebuilt.attr == "income"

    def test_server_merge_checks_attr(self):
        a = SWServer("r", epsilon=1.0, d=32, attr="income")
        b = SWServer("r", epsilon=1.0, d=32, attr="age")
        with pytest.raises(ValueError, match="attribute"):
            a.merge(b)


class TestClient:
    def test_single_report_in_domain(self, rng):
        client = SWClient("r", epsilon=1.0)
        report = client.report(0.5, rng=rng)
        low, high = client.mechanism.output_low, client.mechanism.output_high
        assert low <= report.value <= high
        assert report.round_id == "r"

    def test_batch_encoding(self, rng):
        client = SWClient("r", epsilon=1.0)
        payload = client.report_batch(rng.random(50), rng=rng)
        assert len(payload.splitlines()) == 50


class TestServer:
    def test_round_mismatch_rejected(self, rng):
        server = SWServer("round-a", epsilon=1.0, d=32)
        with pytest.raises(ValueError, match="round"):
            server.ingest(SWReport("round-b", 0.1))

    def test_estimate_before_reports_raises(self):
        with pytest.raises(RuntimeError, match="no reports"):
            SWServer("r", epsilon=1.0, d=32).estimate()

    def test_counts_accumulate(self, rng):
        client = SWClient("r", epsilon=1.0)
        server = SWServer("r", epsilon=1.0, d=32)
        server.ingest_batch(client.report_batch(rng.random(100), rng=rng))
        server.ingest(client.report(0.3, rng=rng))
        assert server.n_reports == 101

    def test_streaming_equals_batch(self, beta_values):
        """Ingesting in many small batches gives the same estimate as one
        big batch — counts are sufficient statistics."""
        client = SWClient("r", epsilon=1.0)
        payloads = [
            client.report_batch(chunk, rng=np.random.default_rng(i))
            for i, chunk in enumerate(np.array_split(beta_values, 7))
        ]
        streamed = SWServer("r", epsilon=1.0, d=64)
        for payload in payloads:
            streamed.ingest_batch(payload)
        batched = SWServer("r", epsilon=1.0, d=64)
        batched.ingest_batch("\n".join(payloads))
        np.testing.assert_allclose(streamed.estimate(), batched.estimate())

    def test_end_to_end_accuracy(self, beta_values):
        client = SWClient("survey", epsilon=2.0)
        server = SWServer("survey", epsilon=2.0, d=64)
        server.ingest_batch(client.report_batch(beta_values, rng=np.random.default_rng(0)))
        estimate = server.estimate()
        truth = np.bincount(
            np.minimum((beta_values * 64).astype(int), 63), minlength=64
        ) / beta_values.size
        assert wasserstein_distance(truth, estimate) < 0.02

    def test_mid_round_estimates_improve(self, beta_values):
        """An estimate after 20x more reports is better, mid-round."""
        client = SWClient("r", epsilon=1.0)
        server = SWServer("r", epsilon=1.0, d=64)
        truth = np.bincount(
            np.minimum((beta_values * 64).astype(int), 63), minlength=64
        ) / beta_values.size
        server.ingest_batch(
            client.report_batch(beta_values[:1000], rng=np.random.default_rng(1))
        )
        early = wasserstein_distance(truth, server.estimate())
        server.ingest_batch(
            client.report_batch(beta_values[1000:], rng=np.random.default_rng(2))
        )
        late = wasserstein_distance(truth, server.estimate())
        assert late < early

    def test_em_mode(self, beta_values, rng):
        client = SWClient("r", epsilon=1.0)
        server = SWServer("r", epsilon=1.0, d=32, postprocess="em")
        server.ingest_batch(client.report_batch(beta_values[:5000], rng=rng))
        est = server.estimate()
        assert est.sum() == pytest.approx(1.0)
