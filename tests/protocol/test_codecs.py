"""Property tests for the protocol-v2 payload codecs.

Every codec must satisfy ``decode(encode(x)) == x`` through both of its
encodings — the columnar form (frames) and the per-report payload form
(JSON lines) — for arbitrary valid report batches.
"""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.freq_oracle.hashing import PRIME
from repro.freq_oracle.hrr import HRRReports
from repro.freq_oracle.olh import OLHReports
from repro.hierarchy.hh import TreeReports
from repro.multidim.marginals import MultiAttributeReports
from repro.protocol.codecs import (
    codec_for_estimator,
    get_codec,
    list_codecs,
    register_codec,
)

# ----------------------------------------------------------------------
# report-batch strategies, one per codec
# ----------------------------------------------------------------------

finite_floats = st.floats(
    min_value=-10.0, max_value=10.0, allow_nan=False, allow_infinity=False
)


@st.composite
def float_batches(draw):
    return np.asarray(draw(st.lists(finite_floats, min_size=1, max_size=50)))


@st.composite
def category_batches(draw):
    return np.asarray(
        draw(st.lists(st.integers(0, 1 << 40), min_size=1, max_size=50)),
        dtype=np.int64,
    )


@st.composite
def olh_batches(draw):
    n = draw(st.integers(1, 30))
    ints = st.lists(st.integers(0, PRIME - 1), min_size=n, max_size=n)
    return OLHReports(
        a=np.asarray(draw(ints), dtype=np.int64),
        b=np.asarray(draw(ints), dtype=np.int64),
        y=np.asarray(
            draw(st.lists(st.integers(0, 63), min_size=n, max_size=n)),
            dtype=np.int64,
        ),
    )


@st.composite
def hrr_batches(draw):
    n = draw(st.integers(1, 30))
    rows = st.lists(st.integers(0, 1023), min_size=n, max_size=n)
    bits = st.lists(st.sampled_from((-1, 1)), min_size=n, max_size=n)
    return HRRReports(
        row=np.asarray(draw(rows), dtype=np.int64),
        bit=np.asarray(draw(bits), dtype=np.int64),
    )


@st.composite
def tree_batches(draw):
    levels = draw(
        st.lists(st.integers(1, 5), min_size=1, max_size=3, unique=True)
    )
    reports, counts = {}, {}
    for level in levels:
        kind = draw(st.sampled_from(("category", "olh", "hrr")))
        batch = draw({"category": category_batches(),
                      "olh": olh_batches(),
                      "hrr": hrr_batches()}[kind])
        reports[level] = batch
        counts[level] = get_codec(kind).n_reports(batch)
    return TreeReports(reports=reports, counts=counts)


@st.composite
def multi_batches(draw):
    n = draw(st.integers(1, 30))
    attrs = st.lists(st.integers(0, 7), min_size=n, max_size=n)
    vals = st.lists(finite_floats, min_size=n, max_size=n)
    return MultiAttributeReports(
        attribute=np.asarray(draw(attrs), dtype=np.int64),
        value=np.asarray(draw(vals)),
    )


BATCHES = {
    "float": float_batches(),
    "category": category_batches(),
    "olh": olh_batches(),
    "hrr": hrr_batches(),
    "tree": tree_batches(),
    "multi": multi_batches(),
}


def assert_batches_equal(left, right):
    """Structural equality across every report-batch type."""
    assert type(left) is type(right) or (
        isinstance(left, np.ndarray) and isinstance(right, np.ndarray)
    )
    if isinstance(left, np.ndarray):
        np.testing.assert_array_equal(left, right)
    elif isinstance(left, OLHReports):
        np.testing.assert_array_equal(left.a, right.a)
        np.testing.assert_array_equal(left.b, right.b)
        np.testing.assert_array_equal(left.y, right.y)
    elif isinstance(left, HRRReports):
        np.testing.assert_array_equal(left.row, right.row)
        np.testing.assert_array_equal(left.bit, right.bit)
    elif isinstance(left, TreeReports):
        assert left.counts == right.counts
        assert set(left.reports) == set(right.reports)
        for level in left.reports:
            assert_batches_equal(left.reports[level], right.reports[level])
    elif isinstance(left, MultiAttributeReports):
        np.testing.assert_array_equal(left.attribute, right.attribute)
        np.testing.assert_array_equal(left.value, right.value)
    else:  # pragma: no cover - unknown batch type means a test bug
        raise AssertionError(f"unhandled batch type {type(left).__name__}")


# ----------------------------------------------------------------------
# round-trip properties
# ----------------------------------------------------------------------


class TestRoundTrips:
    @pytest.mark.parametrize("name", sorted(BATCHES))
    @given(data=st.data())
    def test_columns_roundtrip(self, name, data):
        codec = get_codec(name)
        batch = data.draw(BATCHES[name])
        columns = codec.to_columns(batch)
        assert set(columns) == {col for col, _ in codec.columns}
        assert_batches_equal(codec.from_columns(columns), batch)

    @pytest.mark.parametrize("name", sorted(BATCHES))
    @given(data=st.data())
    def test_payloads_roundtrip(self, name, data):
        codec = get_codec(name)
        batch = data.draw(BATCHES[name])
        payloads = codec.to_payloads(batch)
        assert len(payloads) == codec.n_reports(batch)
        assert_batches_equal(codec.from_payloads(payloads), batch)

    @pytest.mark.parametrize("name", sorted(BATCHES))
    @given(data=st.data())
    def test_payloads_survive_json(self, name, data):
        """Payloads stay exact through a JSON round trip (ints/doubles)."""
        import json

        codec = get_codec(name)
        batch = data.draw(BATCHES[name])
        payloads = json.loads(json.dumps(codec.to_payloads(batch)))
        assert_batches_equal(codec.from_payloads(payloads), batch)


class TestValidation:
    def test_unknown_codec(self):
        with pytest.raises(ValueError, match="unknown payload codec"):
            get_codec("nope")

    def test_registry_lists_builtins(self):
        names = {codec.name for codec in list_codecs()}
        assert {"float", "category", "olh", "hrr", "tree", "multi"} <= names

    def test_double_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_codec(get_codec("float"))

    def test_float_codec_rejects_nonfinite(self):
        with pytest.raises(ValueError, match="finite"):
            get_codec("float").to_columns(np.array([0.1, np.inf]))

    def test_float_codec_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            get_codec("float").to_columns(np.array([]))

    def test_category_codec_rejects_floats(self):
        with pytest.raises(ValueError, match="integer"):
            get_codec("category").to_columns(np.array([0.5, 1.5]))

    def test_hrr_codec_rejects_bad_bits(self):
        with pytest.raises(ValueError, match="-1 or \\+1"):
            get_codec("hrr").from_payloads([[0, 2]])

    def test_multi_column_payload_shape_checked(self):
        with pytest.raises(ValueError, match="3-element"):
            get_codec("olh").from_payloads([[1, 2]])

    def test_missing_column_rejected(self):
        with pytest.raises(ValueError, match="missing column"):
            get_codec("olh").from_columns({"a": np.array([1])})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError, match="mismatched"):
            get_codec("hrr").from_columns(
                {"row": np.array([1, 2]), "bit": np.array([1])}
            )

    def test_tree_codec_rejects_mixed_oracle_level(self):
        codec = get_codec("tree")
        with pytest.raises(ValueError, match="mixes oracle"):
            codec.from_payloads([[1, 0, 3, 0, 0], [1, 1, 3, 4, 5]])

    @pytest.mark.parametrize("payload", [None, "nope", {}, [None, None, None]])
    def test_corrupted_payloads_raise_value_error(self, payload):
        """null/string/object payloads must fail as ValueError (the error
        type the CLI and feed decoders translate), never TypeError."""
        for name in ("category", "float", "olh"):
            with pytest.raises(ValueError):
                get_codec(name).from_payloads([payload])

    def test_ragged_payload_rows_raise_value_error(self):
        with pytest.raises(ValueError):
            get_codec("olh").from_payloads([[1, 2, 3], [1, 2]])


class TestCodecResolution:
    def test_every_registered_estimator_resolves(self):
        from repro.api.registry import list_estimators, make_estimator

        for spec in list_estimators():
            estimator = make_estimator(spec.name, 1.0, 64)
            codec = codec_for_estimator(estimator)
            if spec.codec is not None:
                assert codec.name == spec.codec

    def test_cfo_codec_tracks_oracle_choice(self):
        from repro.binning.cfo_binning import CFOBinning

        grr_backed = CFOBinning(1.0, 64, bins=16, oracle="grr")
        olh_backed = CFOBinning(1.0, 64, bins=16, oracle="olh")
        assert codec_for_estimator(grr_backed).name == "category"
        assert codec_for_estimator(olh_backed).name == "olh"

    def test_uncodeced_object_rejected(self):
        with pytest.raises(ValueError, match="no wire codec"):
            codec_for_estimator(object())
