"""Tests for the columnar binary frame format and frame↔JSONL equivalence."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.protocol.codecs import get_codec
from repro.protocol.frames import (
    FRAME_MAGIC,
    decode_frame,
    decode_frame_grouped,
    encode_frame,
    encode_frame_blocks,
    is_frame,
)
from repro.protocol.messages import decode_feed_grouped, encode_batch_v2
from tests.protocol.test_codecs import BATCHES, assert_batches_equal


class TestFrameRoundTrip:
    @pytest.mark.parametrize("name", sorted(BATCHES))
    @given(data=st.data())
    def test_single_block_roundtrip(self, name, data):
        batch = data.draw(BATCHES[name])
        frame = encode_frame("r1", batch, name, attr="income")
        group = decode_frame(frame, expected_round="r1", expected_attr="income")
        assert group.mechanism == name
        assert group.n == get_codec(name).n_reports(batch)
        assert_batches_equal(group.reports, batch)

    @given(data=st.data())
    def test_grouped_decode_partitions_exactly(self, data):
        """Every block lands in exactly one group, keyed by its attribute."""
        names = data.draw(
            st.lists(st.sampled_from(sorted(BATCHES)), min_size=1, max_size=4,
                     unique=True)
        )
        blocks = [
            (f"attr-{name}", name, data.draw(BATCHES[name])) for name in names
        ]
        frame = encode_frame_blocks("r9", blocks)
        round_id, groups = decode_frame_grouped(frame)
        assert round_id == "r9"
        assert set(groups) == {attr for attr, _, _ in blocks}
        for attr, name, batch in blocks:
            assert groups[attr].mechanism == name
            assert groups[attr].n == get_codec(name).n_reports(batch)
            assert_batches_equal(groups[attr].reports, batch)
        assert sum(g.n for g in groups.values()) == sum(
            get_codec(name).n_reports(batch) for _, name, batch in blocks
        )

    @pytest.mark.parametrize("name", sorted(BATCHES))
    @given(data=st.data())
    def test_frame_equals_jsonl(self, name, data):
        """Both transports decode one batch to identical reports."""
        batch = data.draw(BATCHES[name])
        frame = encode_frame("r1", batch, name, attr="a")
        lines = encode_batch_v2("r1", batch, name, attr="a")
        _, from_frame = decode_frame_grouped(frame)
        _, from_lines = decode_feed_grouped(lines)
        assert set(from_frame) == set(from_lines) == {"a"}
        assert from_frame["a"].mechanism == from_lines["a"].mechanism == name
        assert_batches_equal(from_frame["a"].reports, from_lines["a"].reports)

    def test_frame_is_compact(self, rng):
        """1k SW float reports cost ~8 bytes each plus a fixed header."""
        values = rng.random(1000)
        frame = encode_frame("r", values, "float")
        assert len(frame) < 8 * 1000 + 300


class TestFrameValidation:
    def test_magic_detected(self, rng):
        frame = encode_frame("r", rng.random(4), "float")
        assert is_frame(frame)
        assert frame[:4] == FRAME_MAGIC
        assert not is_frame(b"not a frame")
        assert not is_frame("text")

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            decode_frame(b"XXXX" + b"\x00" * 16)

    def test_truncated_buffer_rejected(self, rng):
        frame = encode_frame("r", rng.random(100), "float")
        with pytest.raises(ValueError, match="truncated"):
            decode_frame(frame[:-8])

    def test_trailing_bytes_rejected(self, rng):
        frame = encode_frame("r", rng.random(100), "float")
        with pytest.raises(ValueError, match="trailing"):
            decode_frame(frame + b"\x00" * 8)

    def test_truncated_header_rejected(self, rng):
        frame = encode_frame("r", rng.random(4), "float")
        with pytest.raises(ValueError, match="truncated|header"):
            decode_frame(frame[:10])

    def test_round_mismatch_rejected(self, rng):
        frame = encode_frame("round-a", rng.random(4), "float")
        with pytest.raises(ValueError, match="round"):
            decode_frame(frame, expected_round="round-b")

    def test_attr_mismatch_rejected(self, rng):
        frame = encode_frame("r", rng.random(4), "float", attr="income")
        with pytest.raises(ValueError, match="attribute"):
            decode_frame(frame, expected_round="r", expected_attr="age")

    def test_multi_attr_frame_needs_grouped_decode(self, rng):
        frame = encode_frame_blocks(
            "r",
            [("a", "float", rng.random(3)), ("b", "float", rng.random(2))],
        )
        with pytest.raises(ValueError, match="mixes attributes"):
            decode_frame(frame)

    def test_duplicate_attr_rejected_on_encode(self, rng):
        with pytest.raises(ValueError, match="repeats"):
            encode_frame_blocks(
                "r",
                [("a", "float", rng.random(3)), ("a", "float", rng.random(2))],
            )

    def test_unknown_codec_in_header_rejected(self, rng):
        frame = bytearray(encode_frame("r", rng.random(4), "float"))
        mutated = bytes(frame).replace(b'"mech":"float"', b'"mech":"nope!"')
        with pytest.raises(ValueError, match="unknown payload codec"):
            decode_frame(mutated)

    def test_empty_blocks_rejected(self):
        with pytest.raises(ValueError, match="at least one block"):
            encode_frame_blocks("r", [])
