"""Streaming frame ingestion: iter_frame_blocks over buffers and files."""

import io

import numpy as np
import pytest

from repro.protocol import CollectionServer, FrameBlock, iter_frame_blocks
from repro.protocol.frames import decode_frame_grouped, encode_frame_blocks
from repro.protocol.messages import FeedGroup


class TrickleReader:
    """A file-like source that returns at most ``chunk`` bytes per read —
    the worst-case short-read behavior a socket file can exhibit."""

    def __init__(self, payload: bytes, chunk: int = 7) -> None:
        self._buffer = io.BytesIO(payload)
        self._chunk = chunk
        self.reads = 0

    def read(self, size: int = -1) -> bytes:
        self.reads += 1
        if size < 0:
            return self._buffer.read()
        return self._buffer.read(min(size, self._chunk))


def make_frame(round_id="r1", n=300, seed=0):
    rng = np.random.default_rng(seed)
    olh = CollectionServer(round_id, "olh", 1.0, 32, attr="age")
    sw = CollectionServer(round_id, "sw-ems", 1.0, 32, attr="income")
    blocks = [
        ("age", olh.codec, olh.privatize(rng.integers(0, 32, size=n), rng=rng)),
        ("income", sw.codec, sw.privatize(rng.random(n), rng=rng)),
    ]
    return encode_frame_blocks(round_id, blocks)


class TestIterFrameBlocks:
    def test_blocks_match_grouped_decode(self):
        frame = make_frame()
        _, groups = decode_frame_grouped(frame)
        blocks = list(iter_frame_blocks(frame))
        assert [b.attr for b in blocks] == ["age", "income"]
        for block in blocks:
            assert isinstance(block, FrameBlock)
            group = block.materialize()
            assert isinstance(group, FeedGroup)
            reference = groups[block.attr]
            assert group.mechanism == reference.mechanism
            assert group.n == reference.n == block.n

    def test_round_carried_on_every_block(self):
        for block in iter_frame_blocks(make_frame(round_id="round-9")):
            assert block.round_id == "round-9"

    def test_streams_from_file_like_source(self):
        frame = make_frame()
        from_bytes = [b.attr for b in iter_frame_blocks(frame)]
        from_stream = [b.attr for b in iter_frame_blocks(io.BytesIO(frame))]
        assert from_stream == from_bytes

    def test_survives_short_reads(self):
        """A source trickling 7 bytes at a time still parses exactly."""
        frame = make_frame(n=50)
        source = TrickleReader(frame, chunk=7)
        blocks = list(iter_frame_blocks(source))
        assert [b.attr for b in blocks] == ["age", "income"]
        assert sum(b.n for b in blocks) == 100
        assert source.reads > 10

    def test_expected_round_enforced(self):
        with pytest.raises(ValueError, match="round"):
            list(iter_frame_blocks(make_frame(round_id="r1"), expected_round="r2"))

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError):
            list(iter_frame_blocks(b"JUNKJUNKJUNKJUNK"))

    def test_truncated_stream_rejected(self):
        frame = make_frame()
        with pytest.raises(ValueError):
            list(iter_frame_blocks(frame[: len(frame) - 9]))

    def test_lazy_materialization(self):
        """Iterating yields undecoded blocks; decoding happens on demand."""
        frame = make_frame()
        blocks = list(iter_frame_blocks(frame))
        first = blocks[0].materialize()
        again = blocks[0].materialize()
        assert first.n == again.n
        assert blocks[1].n > 0  # header metadata available without decode
