"""Fuzz the RPF2 frame decoder through the service ingest path.

Every corruption — truncation at any byte boundary, bad magic, a header
length field that lies, mangled header JSON — must surface as a typed
``ValueError`` (never a struct error, KeyError, or silent misparse), and
a rejected upload must leave the collector bit-for-bit untouched: no
reports ingested, no uploads counted, no journal bytes written.
"""

import numpy as np
import pytest

from repro.protocol.frames import (
    FRAME_MAGIC,
    decode_frame_grouped,
    iter_frame_blocks,
)
from repro.service import ServiceConfig, ShardedCollector
from repro.service.loadgen import synthesize_frames
from repro.tasks import (
    AnalysisPlan,
    AttributeSpec,
    Distribution,
    Mean,
)


def make_plan() -> AnalysisPlan:
    return AnalysisPlan(
        epsilon=2.0,
        attributes=(
            AttributeSpec("age", low=0.0, high=100.0, d=16),
            AttributeSpec("income", low=0.0, high=1e5, d=16),
        ),
        tasks=(Distribution("age"), Mean("income")),
    )


def one_frame(plan, n_users=200, round_id="r1", seed=11) -> bytes:
    [(frame, n)] = list(
        synthesize_frames(plan, round_id, n_users, batch_size=n_users, rng=seed)
    )
    assert n == n_users
    return frame


def header_span(frame: bytes) -> int:
    """Bytes covered by magic + length prefix + JSON header."""
    header_len = int.from_bytes(frame[4:8], "little")
    return 8 + header_len


def collector_fingerprint(collector: ShardedCollector) -> tuple:
    stats = collector.stats()
    per_shard = tuple(
        (shard.stats()["reports_ingested"], shard.stats()["blocks_ingested"])
        for shard in collector.shards
    )
    return (
        stats["uploads_accepted"],
        stats["journal"]["bytes"],
        per_shard,
    )


class TestDecoderFuzz:
    def test_every_truncation_raises_value_error(self):
        frame = one_frame(make_plan())
        for cut in range(0, len(frame), 7):
            with pytest.raises(ValueError):
                decode_frame_grouped(frame[:cut])
        # One byte short is the classic torn-tail shape.
        with pytest.raises(ValueError):
            decode_frame_grouped(frame[:-1])

    def test_bad_magic_raises(self):
        frame = one_frame(make_plan())
        with pytest.raises(ValueError, match="magic"):
            decode_frame_grouped(b"XXXX" + frame[4:])
        with pytest.raises(ValueError):
            decode_frame_grouped(FRAME_MAGIC[:2])

    def test_header_length_lies_raise(self):
        frame = one_frame(make_plan())
        rest = frame[8:]
        # Claims more header than the whole payload holds.
        lying = FRAME_MAGIC + (2**24).to_bytes(4, "little") + rest
        with pytest.raises(ValueError, match="header length"):
            decode_frame_grouped(lying)
        # Claims zero header: the JSON parse must fail, typed.
        lying = FRAME_MAGIC + (0).to_bytes(4, "little") + rest
        with pytest.raises(ValueError):
            decode_frame_grouped(lying)

    def test_mangled_header_json_raises(self):
        frame = one_frame(make_plan())
        span = header_span(frame)
        junk = bytes(b ^ 0x5A for b in frame[8:span])
        with pytest.raises(ValueError):
            decode_frame_grouped(frame[:8] + junk + frame[span:])

    def test_lazy_iterator_raises_typed_on_truncation(self):
        frame = one_frame(make_plan())
        blocks = iter_frame_blocks(frame[: len(frame) - 16])
        with pytest.raises(ValueError):
            for _ in blocks:
                pass

    def test_header_byte_flips_raise_value_error_only(self):
        """Flips inside the header region never escape as untyped errors."""
        frame = one_frame(make_plan())
        span = header_span(frame)
        rng = np.random.default_rng(2026)
        for _ in range(200):
            pos = int(rng.integers(0, span))
            bit = 1 << int(rng.integers(0, 8))
            mutated = bytearray(frame)
            mutated[pos] ^= bit
            try:
                decode_frame_grouped(bytes(mutated))
            except ValueError:
                continue
            except Exception as exc:  # pragma: no cover - the failure mode
                pytest.fail(f"untyped decode error {type(exc).__name__}: {exc}")


class TestIngestFuzzNoPartialState:
    def test_rejected_uploads_leave_collector_untouched(self, tmp_path):
        plan = make_plan()
        frame = one_frame(plan)
        span = header_span(frame)
        config = ServiceConfig(plan=plan, journal_dir=tmp_path / "wal")
        rng = np.random.default_rng(7)
        with ShardedCollector(config) as collector:
            collector.flush()
            before = collector_fingerprint(collector)
            corruptions = [
                frame[: len(frame) // 2],
                frame[:-3],
                b"XXXX" + frame[4:],
                FRAME_MAGIC + (2**24).to_bytes(4, "little") + frame[8:],
            ]
            for _ in range(100):
                pos = int(rng.integers(0, span))
                mutated = bytearray(frame)
                mutated[pos] ^= 0xFF
                corruptions.append(bytes(mutated))
            rejected = 0
            for bad in corruptions:
                try:
                    collector.submit_feed(bad, "r1")
                except ValueError:
                    rejected += 1
                    collector.flush()
                    assert collector_fingerprint(collector) == before
                except Exception as exc:  # pragma: no cover
                    pytest.fail(
                        f"untyped ingest error {type(exc).__name__}: {exc}"
                    )
            assert rejected >= len(corruptions) - 5  # flips rarely stay valid
            # The collector still works after the barrage.
            assert collector.submit_feed(frame, "r1") == 200
            collector.flush()
            assert collector_fingerprint(collector) != before

    def test_round_mismatch_is_rejected_before_any_state(self, tmp_path):
        plan = make_plan()
        frame = one_frame(plan)
        config = ServiceConfig(plan=plan, journal_dir=tmp_path / "wal")
        with ShardedCollector(config) as collector:
            before = collector_fingerprint(collector)
            with pytest.raises(ValueError, match="round"):
                collector.submit_feed(frame, "other")
            collector.flush()
            assert collector_fingerprint(collector) == before
