"""Unit and statistical tests for CFO with binning."""

import numpy as np
import pytest

from repro.binning.cfo_binning import CFOBinning, spread_uniformly
from repro.freq_oracle.grr import GRR
from repro.freq_oracle.olh import OLH
from repro.metrics.distances import wasserstein_distance
from tests.conftest import true_histogram


class TestSpreadUniformly:
    def test_doubling(self):
        out = spread_uniformly(np.array([0.6, 0.4]), 4)
        np.testing.assert_allclose(out, [0.3, 0.3, 0.2, 0.2])

    def test_identity_when_equal(self):
        x = np.array([0.25, 0.25, 0.5])
        np.testing.assert_allclose(spread_uniformly(x, 3), x)

    def test_preserves_total(self, rng):
        x = rng.dirichlet(np.ones(8))
        assert spread_uniformly(x, 64).sum() == pytest.approx(1.0)

    def test_rejects_non_multiple(self):
        with pytest.raises(ValueError, match="multiple"):
            spread_uniformly(np.ones(3) / 3, 10)


class TestCFOBinning:
    def test_name_reflects_bins(self):
        assert CFOBinning(1.0, 1024, bins=32).name == "cfo-binning-32"

    def test_rejects_non_multiple(self):
        with pytest.raises(ValueError):
            CFOBinning(1.0, d=100, bins=32)

    def test_adaptive_oracle_choice(self):
        # Small chunk count at eps=1 -> GRR; many chunks -> OLH.
        assert isinstance(CFOBinning(1.0, 1024, bins=8).oracle, GRR)
        assert isinstance(CFOBinning(1.0, 1024, bins=64).oracle, OLH)

    def test_output_is_distribution(self, beta_values, rng):
        est = CFOBinning(1.0, d=64, bins=16)
        out = est.fit(beta_values, rng=rng)
        assert out.shape == (64,)
        assert (out >= 0).all()
        assert out.sum() == pytest.approx(1.0)

    def test_uniform_within_chunk(self, beta_values, rng):
        est = CFOBinning(1.0, d=64, bins=16)
        out = est.fit(beta_values, rng=rng)
        # Within each chunk of 4 fine buckets the estimate is constant.
        blocks = out.reshape(16, 4)
        assert (np.ptp(blocks, axis=1) < 1e-12).all()

    def test_accuracy_high_epsilon(self, beta_values, rng):
        est = CFOBinning(4.0, d=64, bins=16)
        out = est.fit(beta_values, rng=rng)
        truth = true_histogram(beta_values, 64)
        assert wasserstein_distance(truth, out) < 0.03

    def test_binning_bias_floor(self, beta_values):
        """Even with near-infinite budget, coarse bins leave residual bias —
        the error floor visible in the paper's Figure 2 flat lines."""
        truth = true_histogram(beta_values, 64)
        coarse = CFOBinning(8.0, d=64, bins=4).fit(
            beta_values, rng=np.random.default_rng(0)
        )
        fine = CFOBinning(8.0, d=64, bins=64).fit(
            beta_values, rng=np.random.default_rng(0)
        )
        assert wasserstein_distance(truth, fine) < wasserstein_distance(truth, coarse)
