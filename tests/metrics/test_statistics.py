"""Unit tests for statistical-quantity error metrics."""

import numpy as np
import pytest

from repro.metrics.statistics import DECILES, mean_error, quantile_error, variance_error


class TestMeanError:
    def test_zero_for_identical(self):
        x = np.array([0.5, 0.5])
        assert mean_error(x, x) == 0.0

    def test_known_shift(self):
        x = np.array([1.0, 0.0])  # mean 0.25
        y = np.array([0.0, 1.0])  # mean 0.75
        assert mean_error(x, y) == pytest.approx(0.5)

    def test_symmetric(self, rng):
        a = rng.dirichlet(np.ones(8))
        b = rng.dirichlet(np.ones(8))
        assert mean_error(a, b) == pytest.approx(mean_error(b, a))


class TestVarianceError:
    def test_zero_for_identical(self):
        x = np.array([0.25, 0.25, 0.25, 0.25])
        assert variance_error(x, x) == 0.0

    def test_point_mass_vs_spread(self):
        point = np.array([0.0, 1.0, 0.0, 0.0])
        spread = np.array([0.5, 0.0, 0.0, 0.5])
        # spread has variance (3/8)^2 = 0.140625, point has 0.
        assert variance_error(point, spread) == pytest.approx(0.140625)


class TestQuantileError:
    def test_deciles_constant(self):
        assert DECILES == tuple(pytest.approx(v) for v in np.arange(0.1, 1.0, 0.1))

    def test_zero_for_identical(self):
        x = np.full(100, 0.01)
        assert quantile_error(x, x) == 0.0

    def test_uniform_vs_shifted(self):
        d = 100
        uniform = np.full(d, 1.0 / d)
        shifted = np.roll(uniform.copy(), 10)  # same histogram -> same quantiles
        assert quantile_error(uniform, shifted) == pytest.approx(0.0)

    def test_point_masses_distance(self):
        x = np.zeros(10)
        x[1] = 1.0
        y = np.zeros(10)
        y[8] = 1.0
        # every decile displaced by 0.7
        assert quantile_error(x, y) == pytest.approx(0.7)

    def test_custom_quantiles(self):
        x = np.zeros(4)
        x[0] = 1.0
        y = np.zeros(4)
        y[3] = 1.0
        assert quantile_error(x, y, quantiles=[0.5]) == pytest.approx(0.75)

    def test_empty_quantiles_rejected(self):
        x = np.array([1.0])
        with pytest.raises(ValueError):
            quantile_error(x, x, quantiles=[])
