"""Unit and property tests for W1/KS distances, including the paper's
motivating ordered-domain example."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp
from scipy import stats

from repro.metrics.distances import ks_distance, wasserstein_distance


def _simplex(d):
    return (
        hnp.arrays(np.float64, d, elements=st.floats(0.0, 1.0))
        .map(lambda a: a + 1e-12)
        .map(lambda a: a / a.sum())
    )


class TestWasserstein:
    def test_identical_is_zero(self):
        x = np.array([0.2, 0.8])
        assert wasserstein_distance(x, x) == 0.0

    def test_paper_ordered_example(self):
        """Section 3.1: moving 0.6 mass one bucket < moving it three buckets."""
        x = np.array([0.7, 0.1, 0.1, 0.1])
        near = np.array([0.1, 0.7, 0.1, 0.1])
        far = np.array([0.1, 0.1, 0.1, 0.7])
        assert wasserstein_distance(x, near) < wasserstein_distance(x, far)

    def test_adjacent_swap_value(self):
        # Moving mass m by one bucket of width 1/d costs m/d.
        x = np.array([1.0, 0.0])
        y = np.array([0.0, 1.0])
        assert wasserstein_distance(x, y) == pytest.approx(0.5)

    def test_matches_scipy_on_samples(self, rng):
        d = 32
        a = rng.dirichlet(np.ones(d))
        b = rng.dirichlet(np.ones(d))
        mids = (np.arange(d) + 0.5) / d
        expected = stats.wasserstein_distance(mids, mids, a, b)
        assert wasserstein_distance(a, b) == pytest.approx(expected, rel=1e-9)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="differ"):
            wasserstein_distance(np.ones(3) / 3, np.ones(4) / 4)

    @given(_simplex(16), _simplex(16))
    def test_symmetry(self, a, b):
        assert wasserstein_distance(a, b) == pytest.approx(wasserstein_distance(b, a))

    @given(_simplex(16), _simplex(16), _simplex(16))
    def test_triangle_inequality(self, a, b, c):
        ab = wasserstein_distance(a, b)
        bc = wasserstein_distance(b, c)
        ac = wasserstein_distance(a, c)
        assert ac <= ab + bc + 1e-12

    @given(_simplex(16), _simplex(16))
    def test_bounded_by_domain_width(self, a, b):
        assert 0.0 <= wasserstein_distance(a, b) <= 1.0


class TestKS:
    def test_identical_is_zero(self):
        x = np.array([0.3, 0.7])
        assert ks_distance(x, x) == 0.0

    def test_disjoint_point_masses(self):
        x = np.array([1.0, 0.0, 0.0])
        y = np.array([0.0, 0.0, 1.0])
        assert ks_distance(x, y) == pytest.approx(1.0)

    def test_ordered_domain_example(self):
        x = np.array([0.7, 0.1, 0.1, 0.1])
        near = np.array([0.1, 0.7, 0.1, 0.1])
        far = np.array([0.1, 0.1, 0.1, 0.7])
        assert ks_distance(x, near) <= ks_distance(x, far)

    @given(_simplex(16), _simplex(16))
    def test_bounds(self, a, b):
        assert 0.0 <= ks_distance(a, b) <= 1.0

    @given(_simplex(16), _simplex(16))
    def test_ks_at_least_w1(self, a, b):
        # max |CDF diff| >= mean |CDF diff| = W1 on the unit domain.
        assert ks_distance(a, b) >= wasserstein_distance(a, b) - 1e-12

    @given(_simplex(16), _simplex(16))
    def test_symmetry(self, a, b):
        assert ks_distance(a, b) == pytest.approx(ks_distance(b, a))
