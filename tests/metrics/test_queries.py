"""Unit tests for range queries."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.metrics.queries import (
    random_range_queries,
    range_queries,
    range_query,
    range_query_mae,
)


class TestRangeQueriesBatch:
    def test_matches_single_queries(self, rng):
        hist = rng.dirichlet(np.ones(32))
        windows = [(0.0, 0.25), (0.1, 0.9), (0.5, 0.5)]
        batch = range_queries(hist, windows)
        singles = [range_query(hist, lo, hi - lo) for lo, hi in windows]
        np.testing.assert_allclose(batch, singles)

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError, match="low <= high"):
            range_queries(np.array([1.0]), [(0.8, 0.2)])


class TestRangeQuery:
    def test_full_domain(self):
        x = np.array([0.25, 0.25, 0.5])
        assert range_query(x, 0.0, 1.0) == pytest.approx(1.0)

    def test_single_bucket(self):
        x = np.array([0.2, 0.3, 0.5])
        assert range_query(x, 1 / 3, 1 / 3) == pytest.approx(0.3)

    def test_partial_bucket_proportional(self):
        x = np.array([1.0])
        assert range_query(x, 0.25, 0.5) == pytest.approx(0.5)

    def test_window_clipped_to_domain(self):
        x = np.array([0.5, 0.5])
        assert range_query(x, 0.5, 10.0) == pytest.approx(0.5)

    def test_zero_width(self):
        x = np.array([0.5, 0.5])
        assert range_query(x, 0.3, 0.0) == 0.0

    def test_negative_alpha_rejected(self):
        with pytest.raises(ValueError):
            range_query(np.array([1.0]), 0.2, -0.1)

    def test_additivity(self):
        x = np.array([0.1, 0.2, 0.3, 0.4])
        whole = range_query(x, 0.1, 0.7)
        split = range_query(x, 0.1, 0.3) + range_query(x, 0.4, 0.4)
        assert whole == pytest.approx(split)

    @given(
        hnp.arrays(np.float64, 16, elements=st.floats(0.0, 1.0)),
        st.floats(0.0, 1.0),
        st.floats(0.01, 1.0),
    )
    def test_nonnegative_and_bounded(self, raw, left, alpha):
        total = raw.sum()
        if total == 0:
            return
        x = raw / total
        mass = range_query(x, left, alpha)
        assert -1e-12 <= mass <= 1.0 + 1e-12


class TestRandomQueries:
    def test_range_of_lefts(self, rng):
        lefts = random_range_queries(0.4, 50, rng)
        assert lefts.min() >= 0.0 and lefts.max() <= 0.6

    def test_count(self, rng):
        assert random_range_queries(0.1, 7, rng).size == 7

    def test_rejects_bad_alpha(self):
        with pytest.raises(ValueError):
            random_range_queries(0.0, 10)

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            random_range_queries(0.1, 0)


class TestRangeQueryMAE:
    def test_identical_histograms_zero_error(self, rng):
        x = rng.dirichlet(np.ones(32))
        assert range_query_mae(x, x, 0.1, rng=rng) == pytest.approx(0.0)

    def test_detects_shift(self, rng):
        x = np.zeros(10)
        x[2] = 1.0
        y = np.zeros(10)
        y[7] = 1.0
        assert range_query_mae(x, y, 0.1, rng=rng) > 0.1

    def test_reproducible_with_seed(self, beta_hist_64):
        noisy = beta_hist_64 + 0.001
        noisy /= noisy.sum()
        a = range_query_mae(beta_hist_64, noisy, 0.4, rng=3)
        b = range_query_mae(beta_hist_64, noisy, 0.4, rng=3)
        assert a == b
