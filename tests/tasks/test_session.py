"""Session tests: end-to-end execution, shard merge, state/wire round-trips,
typed results, and the enriched empty-aggregate path."""

import numpy as np
import pytest

from repro import EmptyAggregateError
from repro.tasks import (
    AnalysisPlan,
    AttributeSpec,
    Distribution,
    Marginals,
    Mean,
    Quantiles,
    RangeQueries,
    Session,
    TaskResult,
    Variance,
)
from repro.tasks.results import AnalysisReport


@pytest.fixture(scope="module")
def survey_plan() -> AnalysisPlan:
    """The acceptance scenario: mean + quantiles + range queries, 2 attrs."""
    return AnalysisPlan(
        epsilon=1.0,
        attributes=(
            AttributeSpec("income", low=0.0, high=100_000.0, d=128),
            AttributeSpec("age", low=18.0, high=90.0, d=64),
        ),
        tasks=(
            Mean("income"),
            Quantiles("income", quantiles=(0.25, 0.5, 0.75)),
            RangeQueries("age", windows=((18.0, 30.0), (60.0, 90.0))),
            Mean("age"),
        ),
    )


@pytest.fixture(scope="module")
def survey_data() -> dict:
    rng = np.random.default_rng(99)
    n = 60_000
    return {
        "income": rng.gamma(4.0, 9_000.0, n).clip(0.0, 100_000.0),
        "age": rng.normal(45.0, 14.0, n).clip(18.0, 90.0),
    }


@pytest.fixture(scope="module")
def merged_report(survey_plan, survey_data) -> AnalysisReport:
    """Privatize -> ingest across 3 merged shards -> typed results."""
    rng = np.random.default_rng(7)
    n = next(iter(survey_data.values())).size
    bounds = np.linspace(0, n, 4).astype(int)
    shards = []
    for lo, hi in zip(bounds[:-1], bounds[1:], strict=True):
        shard = Session(survey_plan)
        shard.partial_fit(
            {k: v[lo:hi] for k, v in survey_data.items()}, rng=rng
        )
        shards.append(shard)
    merged = shards[0].merge(shards[1]).merge(shards[2])
    return merged.results()


class TestEndToEnd:
    def test_all_tasks_answered(self, merged_report):
        assert sorted(merged_report.keys()) == [
            "mean:age",
            "mean:income",
            "quantiles:income",
            "range_queries:age",
        ]

    def test_results_are_typed(self, merged_report):
        result = merged_report["mean:income"]
        assert isinstance(result, TaskResult)
        assert result.mechanism == "sw-ems"
        assert result.epsilon_spent == 1.0
        assert result.n_reports > 0

    def test_mean_in_real_units(self, merged_report, survey_data):
        truth = survey_data["income"].mean()
        assert abs(merged_report["mean:income"].value - truth) < 2_500.0

    def test_quantiles_in_real_units(self, merged_report, survey_data):
        truth = np.quantile(survey_data["income"], [0.25, 0.5, 0.75])
        estimate = np.asarray(merged_report["quantiles:income"].value)
        assert np.abs(estimate - truth).max() < 4_000.0

    def test_range_masses_close_to_truth(self, merged_report, survey_data):
        ages = survey_data["age"]
        truth = [
            ((ages >= lo) & (ages <= hi)).mean()
            for lo, hi in merged_report["range_queries:age"].detail["windows"]
        ]
        estimate = np.asarray(merged_report["range_queries:age"].value)
        assert np.abs(estimate - np.asarray(truth)).max() < 0.05

    def test_scalar_mean_attr_uses_population_budget(self, survey_plan):
        # age has mean + range tasks -> sw-ems; both attrs get full epsilon
        session = Session(survey_plan)
        assert session.per_user_epsilon == survey_plan.epsilon

    def test_budget_verified_by_privacy_audit(self, survey_plan, merged_report):
        audit = Session(survey_plan).audit()
        assert audit.satisfied
        assert merged_report.per_user_epsilon == audit.per_user_epsilon
        assert merged_report.epsilon_budget == survey_plan.epsilon

    def test_merge_equals_single_session(self, survey_plan, survey_data):
        """Merging shard sessions is exact: same counts -> same answers."""
        half = 30_000
        data_a = {k: v[:half] for k, v in survey_data.items()}
        data_b = {k: v[half:] for k, v in survey_data.items()}
        one = Session(survey_plan)
        one.ingest(one.privatize(data_a, rng=np.random.default_rng(1)))
        one.ingest(one.privatize(data_b, rng=np.random.default_rng(2)))
        sharded_a = Session(survey_plan)
        sharded_a.ingest(sharded_a.privatize(data_a, rng=np.random.default_rng(1)))
        sharded_b = Session(survey_plan)
        sharded_b.ingest(sharded_b.privatize(data_b, rng=np.random.default_rng(2)))
        sharded_a.merge(sharded_b)
        assert one.n_reports == sharded_a.n_reports
        np.testing.assert_allclose(
            one.results()["mean:income"].value,
            sharded_a.results()["mean:income"].value,
        )


class TestLifecycleValidation:
    def test_missing_attribute_rejected(self, survey_plan):
        with pytest.raises(ValueError, match="missing attributes"):
            Session(survey_plan).privatize({"income": np.array([1.0])})

    def test_undeclared_attribute_rejected(self, survey_plan):
        data = {
            "income": np.array([1.0]),
            "age": np.array([20.0]),
            "ssn": np.array([1.0]),
        }
        with pytest.raises(ValueError, match="undeclared"):
            Session(survey_plan).privatize(data)

    def test_ragged_user_axis_rejected(self, survey_plan):
        data = {"income": np.array([1.0, 2.0]), "age": np.array([20.0])}
        with pytest.raises(ValueError, match="one row per user"):
            Session(survey_plan).privatize(data)

    def test_merge_different_plans_rejected(self, survey_plan):
        other = AnalysisPlan(
            epsilon=2.0,
            attributes=survey_plan.attributes,
            tasks=survey_plan.tasks,
        )
        with pytest.raises(ValueError, match="different plans"):
            Session(survey_plan).merge(Session(other))

    def test_bad_confidence_rejected(self, survey_plan):
        with pytest.raises(ValueError, match="confidence"):
            Session(survey_plan).results(confidence=1.5)


class TestEmptyAggregatePath:
    def test_error_names_attribute_and_tasks(self, survey_plan):
        with pytest.raises(
            EmptyAggregateError, match=r"'income' \(tasks: mean, quantiles\)"
        ):
            Session(survey_plan).results()

    def test_error_is_catchable_as_runtime_error(self, survey_plan):
        with pytest.raises(RuntimeError):
            Session(survey_plan).results()

    def test_partially_filled_session_names_empty_attribute(self, survey_plan):
        session = Session(survey_plan)
        # Feed only income reports through the wire path; age stays empty.
        est = session.estimators["income"]
        reports = est.privatize(np.random.default_rng(0).random(500))
        session.ingest({"income": reports})
        with pytest.raises(EmptyAggregateError, match="'age'"):
            session.results()


class TestStateAndWire:
    def test_state_roundtrip_preserves_results(self, survey_plan, survey_data):
        rng = np.random.default_rng(11)
        session = Session(survey_plan)
        session.partial_fit(
            {k: v[:20_000] for k, v in survey_data.items()}, rng=rng
        )
        rebuilt = Session.from_state(session.to_state())
        assert rebuilt.n_reports == session.n_reports
        np.testing.assert_allclose(
            rebuilt.results()["mean:income"].value,
            session.results()["mean:income"].value,
        )

    def test_state_attribute_mismatch_rejected(self, survey_plan):
        state = Session(survey_plan).to_state()
        del state["estimators"]["age"]
        with pytest.raises(ValueError, match="covers attributes"):
            Session.from_state(state)

    def test_wire_roundtrip(self, survey_plan, survey_data):
        rng = np.random.default_rng(13)
        tx = Session(survey_plan)
        reports = tx.privatize(
            {k: v[:5_000] for k, v in survey_data.items()}, rng=rng
        )
        payload = tx.encode_reports(reports, "round-9")
        rx = Session(survey_plan)
        assert rx.ingest_payload(payload, "round-9") == 5_000
        assert sum(rx.n_reports.values()) == 5_000

    def test_wire_rejects_unknown_attribute(self, survey_plan):
        from repro.protocol import encode_batch

        payload = encode_batch("r", np.array([0.1]), attr="ssn")
        with pytest.raises(ValueError, match="undeclared"):
            Session(survey_plan).ingest_payload(payload, "r")

    def test_encode_rejects_undeclared_attribute(self, survey_plan):
        """A typo'd name fails at the sender, not on the receiving shard."""
        with pytest.raises(ValueError, match="undeclared"):
            Session(survey_plan).encode_reports({"incmoe": np.array([0.1])}, "r")

    def test_fit_sharded_matches_manual_merge(self, survey_plan, survey_data):
        data = {k: v[:12_000] for k, v in survey_data.items()}
        merged = Session.fit_sharded(survey_plan, data, shards=3, rng=21)
        assert sum(merged.n_reports.values()) == 12_000
        np.testing.assert_allclose(
            sum(merged.results()["quantiles:income"].value),
            sum(
                Session.fit_sharded(survey_plan, data, shards=3, rng=21)
                .results()["quantiles:income"]
                .value
            ),
        )

    def test_fit_sharded_validates_inputs(self, survey_plan):
        with pytest.raises(ValueError, match="shards"):
            Session.fit_sharded(survey_plan, {"income": [1.0]}, shards=0)
        with pytest.raises(ValueError, match="non-empty"):
            Session.fit_sharded(survey_plan, {})
        with pytest.raises(ValueError, match="at least one user"):
            Session.fit_sharded(survey_plan, {"income": [], "age": []}, shards=2)

    def test_wire_rejects_structured_reports(self):
        plan = AnalysisPlan(
            epsilon=1.0,
            attributes=(AttributeSpec("x", d=16),),
            tasks=(RangeQueries("x", windows=((0.1, 0.4),)),),
        )
        session = Session(plan)  # hh-admm -> TreeReports, not floats
        reports = session.privatize(
            {"x": np.random.default_rng(0).random(200)}, rng=np.random.default_rng(1)
        )
        with pytest.raises(ValueError, match="wire"):
            session.encode_reports(reports, "r")

    def test_wire_ingest_rejects_structured_estimator_attribute(self):
        """A float feed for an hh-admm attribute fails loudly, not with an
        AttributeError deep inside the tree aggregator."""
        from repro.protocol import encode_batch

        plan = AnalysisPlan(
            epsilon=1.0,
            attributes=(AttributeSpec("x", d=16),),
            tasks=(RangeQueries("x", windows=((0.1, 0.4),)),),
        )
        payload = encode_batch("r", np.array([0.2, 0.3]), attr="x")
        with pytest.raises(ValueError, match="wire"):
            Session(plan).ingest_payload(payload, "r")


class TestResultFeatures:
    def test_confidence_intervals_bracket_value(self, survey_plan, survey_data):
        rng = np.random.default_rng(17)
        session = Session(survey_plan)
        session.partial_fit(
            {k: v[:20_000] for k, v in survey_data.items()}, rng=rng
        )
        report = session.results(confidence=0.8, n_bootstrap=20, rng=rng)
        result = report["mean:income"]
        assert result.ci is not None
        lo, hi = result.ci
        assert lo <= result.value <= hi
        assert result.confidence == 0.8

    def test_report_json_roundtrip(self, merged_report):
        rebuilt = AnalysisReport.from_json(merged_report.to_json())
        assert rebuilt.keys() == merged_report.keys()
        assert rebuilt["mean:income"].value == pytest.approx(
            merged_report["mean:income"].value
        )
        assert rebuilt.per_user_epsilon == merged_report.per_user_epsilon

    def test_unknown_result_key_raises(self, merged_report):
        with pytest.raises(KeyError, match="no result"):
            merged_report["variance:income"]

    def test_distribution_and_marginals_tasks(self):
        rng = np.random.default_rng(23)
        plan = AnalysisPlan(
            epsilon=1.0,
            attributes=(
                AttributeSpec("a", d=32),
                AttributeSpec("b", d=32),
            ),
            tasks=(
                Distribution("a"),
                Variance("a"),
                Marginals(names=("a", "b")),
            ),
        )
        session = Session(plan)
        session.partial_fit(
            {"a": rng.beta(2, 5, 20_000), "b": rng.random(20_000)}, rng=rng
        )
        report = session.results()
        hist = np.asarray(report["distribution:a"].value)
        assert hist.shape == (32,)
        assert hist.sum() == pytest.approx(1.0)
        assert len(report["distribution:a"].detail["edges"]) == 33
        marginals = report["marginals:a+b"]
        assert set(marginals.value) == {"a", "b"}
        assert np.asarray(marginals.value["b"]).sum() == pytest.approx(1.0)
        assert report["variance:a"].value == pytest.approx(
            rng.beta(2, 5, 200_000).var(), abs=0.02
        )

    def test_marginals_epsilon_spent_sums_under_budget_split(self):
        """Sequential composition: the marginals answer consumed the sum of
        the attribute allocations, not the max."""
        rng = np.random.default_rng(31)
        plan = AnalysisPlan(
            epsilon=1.0,
            split="budget",
            attributes=(AttributeSpec("a", d=32), AttributeSpec("b", d=32)),
            tasks=(Marginals(names=("a", "b")),),
        )
        session = Session(plan)
        session.partial_fit(
            {"a": rng.random(5_000), "b": rng.random(5_000)}, rng=rng
        )
        result = session.results()["marginals:a+b"]
        assert result.epsilon_spent == pytest.approx(1.0)  # 0.5 + 0.5

    def test_marginals_epsilon_spent_max_under_population_split(self):
        rng = np.random.default_rng(37)
        plan = AnalysisPlan(
            epsilon=1.0,
            attributes=(AttributeSpec("a", d=32), AttributeSpec("b", d=32)),
            tasks=(Marginals(names=("a", "b")),),
        )
        session = Session(plan)
        session.partial_fit(
            {"a": rng.random(5_000), "b": rng.random(5_000)}, rng=rng
        )
        result = session.results()["marginals:a+b"]
        assert result.epsilon_spent == pytest.approx(1.0)  # max(1.0, 1.0)

    def test_scalar_attribute_path(self):
        """A mean-only attribute runs the SR/PM scalar estimator."""
        rng = np.random.default_rng(29)
        plan = AnalysisPlan(
            epsilon=2.0,
            attributes=(AttributeSpec("x", low=0.0, high=10.0),),
            tasks=(Mean("x"),),
        )
        session = Session(plan)
        values = rng.uniform(2.0, 8.0, 40_000)
        session.partial_fit({"x": values}, rng=rng)
        report = session.results(confidence=0.9)
        result = report["mean:x"]
        assert result.mechanism == "pm"
        assert result.ci is None  # scalar mechanisms carry no bootstrap model
        assert abs(result.value - values.mean()) < 0.25
