"""Planner tests: Section 8 selection rules + budget allocation + audit."""

import pytest

from repro.api import list_estimators
from repro.mean import SCALAR_REGIME_THRESHOLD, recommended_scalar_mechanism
from repro.privacy import audit_budget
from repro.tasks import (
    AnalysisPlan,
    AttributeSpec,
    Distribution,
    Marginals,
    Mean,
    Quantiles,
    RangeQueries,
    Variance,
    plan_analysis,
)


def single(task, spec=None, epsilon=1.0, **plan_kwargs):
    spec = spec or AttributeSpec("x")
    return AnalysisPlan(
        epsilon=epsilon, attributes=(spec,), tasks=(task,), **plan_kwargs
    )


class TestSection8Selection:
    """The planner implements the README's 'which mechanism' table."""

    def test_distribution_task_gets_sw_ems(self):
        planned = plan_analysis(single(Distribution("x")))
        assert planned.choice_for("x").mechanism == "sw-ems"

    @pytest.mark.parametrize(
        "task",
        [Quantiles("x"), Variance("x")],
        ids=["quantiles", "variance"],
    )
    def test_distribution_derived_tasks_get_sw_ems(self, task):
        assert plan_analysis(single(task)).choice_for("x").mechanism == "sw-ems"

    def test_mean_mixed_with_quantiles_gets_sw_ems(self):
        plan = AnalysisPlan(
            epsilon=1.0,
            attributes=(AttributeSpec("x"),),
            tasks=(Mean("x"), Quantiles("x")),
        )
        assert plan_analysis(plan).choice_for("x").mechanism == "sw-ems"

    def test_mean_only_gets_scalar_regime_choice(self):
        low = plan_analysis(single(Mean("x"), epsilon=0.5))
        high = plan_analysis(single(Mean("x"), epsilon=2.0))
        assert low.choice_for("x").mechanism == "sr"
        assert high.choice_for("x").mechanism == "pm"
        assert recommended_scalar_mechanism(SCALAR_REGIME_THRESHOLD) == "sr"

    def test_range_only_gets_hh_admm(self):
        task = RangeQueries("x", windows=((0.1, 0.3),))
        assert plan_analysis(single(task)).choice_for("x").mechanism == "hh-admm"

    def test_range_plus_mean_gets_sw_ems(self):
        plan = AnalysisPlan(
            epsilon=1.0,
            attributes=(AttributeSpec("x"),),
            tasks=(Mean("x"), RangeQueries("x", windows=((0.1, 0.3),))),
        )
        assert plan_analysis(plan).choice_for("x").mechanism == "sw-ems"

    def test_discrete_attribute_gets_discrete_sw(self):
        spec = AttributeSpec("x", d=16, kind="discrete")
        planned = plan_analysis(single(Distribution("x"), spec=spec))
        assert planned.choice_for("x").mechanism == "sw-discrete-ems"

    def test_marginals_force_distribution_mechanisms(self):
        plan = AnalysisPlan(
            epsilon=1.0,
            attributes=(AttributeSpec("a"), AttributeSpec("b")),
            tasks=(Marginals(names=("a", "b")), Mean("a")),
        )
        planned = plan_analysis(plan)
        assert planned.choice_for("a").mechanism == "sw-ems"
        assert planned.choice_for("b").mechanism == "sw-ems"

    def test_hh_granularity_snapped_to_tree_grid(self):
        spec = AttributeSpec("x", d=100)
        task = RangeQueries("x", windows=((0.1, 0.3),))
        choice = plan_analysis(single(task, spec=spec)).choice_for("x")
        assert choice.d == 256  # next power of the branching factor 4

    def test_choices_pass_registry_capability_check(self):
        """Every planned mechanism supports its tasks' registry metrics."""
        plan = AnalysisPlan(
            epsilon=1.0,
            attributes=(AttributeSpec("a"), AttributeSpec("b"), AttributeSpec("c")),
            tasks=(
                Distribution("a"),
                Mean("b"),
                RangeQueries("c", windows=((0.0, 0.5),)),
            ),
        )
        planned = plan_analysis(plan)
        supported = {
            "a": {s.name for s in list_estimators(metric="w1")},
            "b": {s.name for s in list_estimators(metric="mean")},
            "c": {s.name for s in list_estimators(metric="range-0.1")},
        }
        for attr, names in supported.items():
            assert planned.choice_for(attr).mechanism in names


class TestBudgetAllocation:
    def test_population_split_full_budget_each(self):
        plan = AnalysisPlan(
            epsilon=1.5,
            attributes=(AttributeSpec("a"), AttributeSpec("b")),
            tasks=(Distribution("a"), Distribution("b")),
        )
        planned = plan_analysis(plan)
        assert planned.allocation == {"a": 1.5, "b": 1.5}
        assert planned.composition == "parallel"
        assert planned.per_user_epsilon == 1.5

    def test_budget_split_weight_proportional(self):
        plan = AnalysisPlan(
            epsilon=1.0,
            split="budget",
            attributes=(
                AttributeSpec("a", weight=3.0),
                AttributeSpec("b", weight=1.0),
            ),
            tasks=(Distribution("a"), Distribution("b")),
        )
        planned = plan_analysis(plan)
        assert planned.allocation["a"] == pytest.approx(0.75)
        assert planned.allocation["b"] == pytest.approx(0.25)
        assert planned.composition == "sequential"
        assert planned.per_user_epsilon == pytest.approx(1.0)

    def test_audit_goes_through_privacy_module(self):
        planned = plan_analysis(single(Distribution("x"), epsilon=2.0))
        audit = planned.audit()
        assert audit.satisfied
        assert audit == audit_budget(
            planned.allocation, 2.0, composition=planned.composition
        )

    def test_make_estimators_match_choices(self):
        plan = AnalysisPlan(
            epsilon=1.0,
            attributes=(AttributeSpec("a", d=32), AttributeSpec("b")),
            tasks=(Distribution("a"), Mean("b")),
        )
        estimators = plan_analysis(plan).make_estimators()
        assert estimators["a"].d == 32
        assert estimators["a"].kind == "distribution"
        assert estimators["b"].kind == "scalar"

    def test_describe_mentions_every_attribute(self):
        plan = AnalysisPlan(
            epsilon=1.0,
            attributes=(AttributeSpec("a"), AttributeSpec("b")),
            tasks=(Distribution("a"), Mean("b")),
        )
        text = plan_analysis(plan).describe()
        assert "a: sw-ems" in text
        assert "per-user epsilon" in text


class TestBudgetAudit:
    def test_sequential_sums(self):
        audit = audit_budget({"a": 0.5, "b": 0.5}, 1.0, composition="sequential")
        assert audit.per_user_epsilon == 1.0
        assert audit.satisfied
        assert audit.slack == pytest.approx(0.0)

    def test_sequential_overspend_flagged(self):
        audit = audit_budget({"a": 0.8, "b": 0.8}, 1.0, composition="sequential")
        assert not audit.satisfied
        assert audit.slack < 0

    def test_parallel_takes_max(self):
        audit = audit_budget({"a": 1.0, "b": 1.0}, 1.0, composition="parallel")
        assert audit.per_user_epsilon == 1.0
        assert audit.satisfied

    def test_bad_composition_rejected(self):
        with pytest.raises(ValueError, match="composition"):
            audit_budget({"a": 1.0}, 1.0, composition="adaptive")

    def test_empty_allocation_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            audit_budget({}, 1.0)
