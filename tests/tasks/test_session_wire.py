"""Session wire round-trips: to_feed/ingest_feed over frames and JSON lines.

The v1 helpers (``encode_reports``/``ingest_payload``) only carry wave and
scalar reports; these tests cover the protocol-v2 path, which must serve
*every* planned mechanism — including the hierarchical families whose
reports the v1 wire rejects.
"""

import numpy as np
import pytest

from repro.tasks import (
    AnalysisPlan,
    AttributeSpec,
    Distribution,
    Mean,
    RangeQueries,
    Session,
)


@pytest.fixture(scope="module")
def plan():
    return AnalysisPlan(
        epsilon=2.0,
        attributes=(
            AttributeSpec(name="income", low=0.0, high=100_000.0),
            AttributeSpec(name="age", low=18.0, high=90.0),
        ),
        tasks=(Distribution(attribute="income"), Mean(attribute="age")),
    )


@pytest.fixture(scope="module")
def population():
    gen = np.random.default_rng(7)
    n = 20_000
    return {
        "income": gen.gamma(3.0, 9_000.0, n).clip(0, 100_000),
        "age": gen.normal(45.0, 12.0, n).clip(18, 90),
    }


class TestFeedRoundTrip:
    @pytest.mark.parametrize("wire", ["frame", "jsonl"])
    def test_feed_equals_direct_ingest(self, plan, population, wire):
        gen = np.random.default_rng(1)
        sender = Session(plan)
        reports = sender.privatize(population, rng=gen)

        direct = Session(plan)
        direct.ingest(reports)

        receiver = Session(plan)
        feed = sender.to_feed(reports, "r1", format=wire)
        total = sum(np.asarray(batch).shape[0] for batch in reports.values())
        assert receiver.ingest_feed(feed, "r1") == total
        for attr in receiver.attributes:
            np.testing.assert_allclose(
                np.asarray(receiver._estimate(attr), dtype=np.float64),
                np.asarray(direct._estimate(attr), dtype=np.float64),
            )

    def test_round_scoping(self, plan, population):
        gen = np.random.default_rng(2)
        session = Session(plan)
        feed = session.to_feed(session.privatize(population, rng=gen), "r1")
        with pytest.raises(ValueError, match="round"):
            Session(plan).ingest_feed(feed, "other-round")

    def test_bad_format_rejected(self, plan, population):
        session = Session(plan)
        reports = session.privatize(population, rng=np.random.default_rng(3))
        with pytest.raises(ValueError, match="format"):
            session.to_feed(reports, "r", format="csv")

    def test_undeclared_attribute_rejected(self, plan):
        from repro.protocol import encode_frame

        session = Session(plan)
        foreign = encode_frame("r", np.array([0.5]), "float", attr="height")
        with pytest.raises(ValueError, match="undeclared"):
            session.ingest_feed(foreign, "r")

    def test_codec_mismatch_rejected(self, plan):
        from repro.protocol import encode_frame

        session = Session(plan)
        wrong = encode_frame("r", np.array([3], dtype=np.int64), "category", attr="age")
        with pytest.raises(ValueError, match="payloads"):
            session.ingest_feed(wrong, "r")

    def test_non_frame_bytes_rejected(self, plan):
        with pytest.raises(ValueError, match="magic"):
            Session(plan).ingest_feed(b"junk", "r")

    def test_rejected_feed_ingests_nothing(self, plan):
        """All-or-nothing: a feed with one bad block must not leave the
        good blocks' reports in the aggregators (a retry would double-count)."""
        from repro.protocol import encode_frame_blocks

        session = Session(plan)
        mixed = encode_frame_blocks("r", [
            ("income", "float", np.array([0.1, 0.2, 0.3])),   # valid
            ("age", "category", np.array([1], dtype=np.int64)),  # wrong codec
        ])
        with pytest.raises(ValueError, match="payloads"):
            session.ingest_feed(mixed, "r")
        assert session.n_reports == {"income": 0, "age": 0}

    def test_ingest_error_rolls_back_earlier_blocks(self, plan):
        """Even a domain error surfacing inside ingest leaves no state.

        The first block (age, scalar mechanism) ingests fine; the second
        block's reports sit outside the SW output domain and blow up inside
        ``ingest`` — the rollback must clear the first block again.
        """
        from repro.protocol import encode_frame_blocks

        session = Session(plan)
        mixed = encode_frame_blocks("r", [
            ("age", "float", np.array([0.1, 0.2, 0.3])),
            ("income", "float", np.array([99.0, -99.0, 42.0])),
        ])
        with pytest.raises(ValueError, match="domain"):
            session.ingest_feed(mixed, "r")
        assert session.n_reports == {"income": 0, "age": 0}


class TestHierarchicalOverTheWire:
    def test_range_only_plan_round_trips(self):
        """Range-only plans resolve to hh-admm, whose TreeReports the v1
        wire cannot carry — the v2 feed must."""
        plan = AnalysisPlan(
            epsilon=1.0,
            attributes=(AttributeSpec(name="latency", low=0.0, high=1.0),),
            tasks=(
                RangeQueries(attribute="latency", windows=((0.1, 0.4),)),
            ),
        )
        gen = np.random.default_rng(5)
        sender = Session(plan)
        data = {"latency": gen.beta(2.0, 5.0, 8_192)}
        reports = sender.privatize(data, rng=gen)

        with pytest.raises(ValueError, match="JSON-lines"):
            sender.encode_reports(reports, "r")  # the v1 wire still rejects

        receiver = Session(plan)
        count = receiver.ingest_feed(sender.to_feed(reports, "r"), "r")
        assert count == 8_192
        report = receiver.results()
        (mass,) = report["range_queries:latency"].value
        assert np.isfinite(mass)
