"""Unit tests for declarative plans: validation + serialization."""

import numpy as np
import pytest

from repro.tasks import (
    AnalysisPlan,
    AttributeSpec,
    Distribution,
    Marginals,
    Mean,
    Quantiles,
    RangeQueries,
    Variance,
    load_plan,
    task_from_dict,
)


def two_attr_plan(**kwargs) -> AnalysisPlan:
    return AnalysisPlan(
        epsilon=1.0,
        attributes=(
            AttributeSpec("income", low=0.0, high=100_000.0, d=128),
            AttributeSpec("age", low=18.0, high=90.0, d=64),
        ),
        tasks=(
            Mean("income"),
            Quantiles("income", quantiles=(0.5,)),
            RangeQueries("age", windows=((20.0, 30.0),)),
        ),
        **kwargs,
    )


class TestAttributeSpec:
    def test_unit_mapping_roundtrip(self):
        spec = AttributeSpec("x", low=10.0, high=20.0)
        values = np.array([10.0, 15.0, 20.0])
        np.testing.assert_allclose(spec.to_unit(values), [0.0, 0.5, 1.0])
        np.testing.assert_allclose(spec.from_unit(spec.to_unit(values)), values)

    def test_out_of_domain_rejected(self):
        spec = AttributeSpec("x", low=0.0, high=1.0)
        with pytest.raises(ValueError, match="inside"):
            spec.to_unit(np.array([1.5]))

    def test_bad_domain_rejected(self):
        with pytest.raises(ValueError, match="low < high"):
            AttributeSpec("x", low=1.0, high=1.0)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            AttributeSpec("x", kind="categorical")

    def test_bucket_edges_span_domain(self):
        spec = AttributeSpec("x", low=0.0, high=10.0, d=4)
        np.testing.assert_allclose(spec.bucket_edges(), [0.0, 2.5, 5.0, 7.5, 10.0])


class TestTaskValidation:
    def test_quantiles_outside_unit_rejected(self):
        with pytest.raises(ValueError, match="quantiles"):
            Quantiles("x", quantiles=(1.5,))

    def test_empty_windows_rejected(self):
        with pytest.raises(ValueError, match="windows"):
            RangeQueries("x", windows=())

    def test_inverted_window_rejected(self):
        with pytest.raises(ValueError, match="low <= high"):
            RangeQueries("x", windows=((3.0, 1.0),))

    def test_marginals_needs_two_names(self):
        with pytest.raises(ValueError, match="two attribute"):
            Marginals(names=("only",))

    def test_keys(self):
        assert Mean("a").key == "mean:a"
        assert Marginals(names=("a", "b")).key == "marginals:a+b"

    def test_task_dict_roundtrip(self):
        for task in (
            Mean("a"),
            Variance("a"),
            Distribution("a"),
            Quantiles("a", quantiles=(0.1, 0.9)),
            RangeQueries("a", windows=((0.0, 0.5),)),
            Marginals(names=("a", "b")),
        ):
            assert task_from_dict(task.to_dict()) == task

    def test_unknown_task_type_rejected(self):
        with pytest.raises(ValueError, match="unknown task"):
            task_from_dict({"task": "median-of-means", "attribute": "a"})


class TestPlanValidation:
    def test_valid_plan_builds(self):
        plan = two_attr_plan()
        assert plan.attribute("age").d == 64
        assert {t.task for t in plan.tasks_for("income")} == {"mean", "quantiles"}

    def test_unknown_attribute_rejected(self):
        with pytest.raises(ValueError, match="unknown attribute"):
            AnalysisPlan(
                epsilon=1.0,
                attributes=(AttributeSpec("a"),),
                tasks=(Mean("a"), Mean("ghost")),
            )

    def test_unused_attribute_rejected(self):
        with pytest.raises(ValueError, match="no task uses"):
            AnalysisPlan(
                epsilon=1.0,
                attributes=(AttributeSpec("a"), AttributeSpec("b")),
                tasks=(Mean("a"),),
            )

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(ValueError, match="unique"):
            AnalysisPlan(
                epsilon=1.0,
                attributes=(AttributeSpec("a"), AttributeSpec("a")),
                tasks=(Mean("a"),),
            )

    def test_duplicate_task_rejected(self):
        with pytest.raises(ValueError, match="duplicate task"):
            AnalysisPlan(
                epsilon=1.0,
                attributes=(AttributeSpec("a"),),
                tasks=(Mean("a"), Mean("a")),
            )

    def test_window_outside_domain_rejected(self):
        with pytest.raises(ValueError, match="outside"):
            AnalysisPlan(
                epsilon=1.0,
                attributes=(AttributeSpec("age", low=18.0, high=90.0),),
                tasks=(RangeQueries("age", windows=((0.0, 30.0),)),),
            )

    def test_bad_split_rejected(self):
        with pytest.raises(ValueError, match="split"):
            two_attr_plan(split="per-query")


class TestPlanSerialization:
    def test_dict_roundtrip(self):
        plan = two_attr_plan(split="budget")
        assert AnalysisPlan.from_dict(plan.to_dict()) == plan

    def test_json_roundtrip(self):
        plan = two_attr_plan()
        assert AnalysisPlan.from_json(plan.to_json()) == plan

    def test_load_json_file(self, tmp_path):
        plan = two_attr_plan()
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        assert load_plan(path) == plan

    def test_non_object_root_rejected(self):
        with pytest.raises(ValueError, match="JSON/TOML object"):
            AnalysisPlan.from_json("[]")

    def test_typoed_attribute_key_rejected(self):
        with pytest.raises(ValueError, match="AttributeSpec"):
            AnalysisPlan.from_dict({
                "epsilon": 1.0,
                "attributes": [{"name": "x", "lo": 0.0}],
                "tasks": [{"task": "mean", "attribute": "x"}],
            })

    def test_missing_key_rejected(self):
        with pytest.raises(ValueError, match="missing required key"):
            AnalysisPlan.from_dict({"attributes": [], "tasks": []})

    def test_load_toml_file(self, tmp_path):
        path = tmp_path / "plan.toml"
        path.write_text(
            """
epsilon = 2.0
split = "budget"

[[attributes]]
name = "income"
low = 0.0
high = 100000.0
d = 128

[[tasks]]
task = "mean"
attribute = "income"
"""
        )
        plan = load_plan(path)
        assert plan.epsilon == 2.0
        assert plan.split == "budget"
        assert plan.tasks[0] == Mean("income")
