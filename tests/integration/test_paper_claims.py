"""Tests pinning the paper's central experimental claims (reduced scale).

Each test here corresponds to a sentence in the paper's abstract,
Section 5, or Section 6 — the qualitative *shape* of the results that the
reproduction must preserve. Statistical comparisons average a few seeds so
they are stable under the fixed test seeds.
"""

import numpy as np
import pytest

from repro.core.bandwidth import optimal_bandwidth
from repro.core.general_wave import GeneralWave
from repro.core.pipeline import SWEstimator, WaveEstimator
from repro.hierarchy.admm import HHADMM
from repro.metrics.distances import ks_distance, wasserstein_distance
from repro.metrics.statistics import quantile_error
from tests.conftest import true_histogram


def _mean_w1(estimator_factory, values, truth, seeds=3):
    out = []
    for seed in range(seeds):
        est = estimator_factory().fit(values, rng=np.random.default_rng(seed))
        out.append(wasserstein_distance(truth, est))
    return float(np.mean(out))


@pytest.fixture(scope="module")
def beta_50k():
    return np.random.default_rng(2024).beta(5, 2, 50_000)


@pytest.fixture(scope="module")
def spiky_values():
    """Income-like: smooth body + round-number spikes."""
    gen = np.random.default_rng(9)
    body = gen.beta(2, 4, 60_000)
    spikes = gen.choice([0.1, 0.2, 0.3, 0.5], size=40_000)
    return np.concatenate([body, spikes])


class TestHeadlineClaim:
    """'SW with EMS consistently outperforms other methods' (abstract)."""

    def test_sw_ems_beats_sw_em_w1(self, beta_50k):
        truth = true_histogram(beta_50k, 256)
        ems = _mean_w1(lambda: SWEstimator(1.0, 256, postprocess="ems"), beta_50k, truth)
        em = _mean_w1(lambda: SWEstimator(1.0, 256, postprocess="em"), beta_50k, truth)
        assert ems < em

    def test_sw_ems_beats_hh_admm_on_smooth_data(self, beta_50k):
        truth = true_histogram(beta_50k, 256)
        sw = _mean_w1(lambda: SWEstimator(1.0, 256), beta_50k, truth)
        admm = _mean_w1(lambda: HHADMM(1.0, 256), beta_50k, truth)
        assert sw < admm


class TestSpikyDataClaim:
    """'HH-ADMM performs better than SW-EMS on a very spiky distribution
    under some of the metrics' (Section 6.2: KS distance, income, large eps)."""

    def test_hh_admm_wins_ks_on_spiky_data(self, spiky_values):
        truth = true_histogram(spiky_values, 256)
        eps = 2.5
        sw_ks, admm_ks = [], []
        for seed in range(3):
            sw = SWEstimator(eps, 256).fit(spiky_values, rng=np.random.default_rng(seed))
            admm = HHADMM(eps, 256).fit(spiky_values, rng=np.random.default_rng(seed + 50))
            sw_ks.append(ks_distance(truth, sw))
            admm_ks.append(ks_distance(truth, admm))
        assert np.mean(admm_ks) < np.mean(sw_ks)

    def test_ems_smooths_spikes_away(self, spiky_values):
        """Why SW-EMS loses on KS: its estimate underweights point masses."""
        truth = true_histogram(spiky_values, 256)
        spike_bucket = int(0.5 * 256)
        sw = SWEstimator(2.5, 256).fit(spiky_values, rng=np.random.default_rng(0))
        admm = HHADMM(2.5, 256).fit(spiky_values, rng=np.random.default_rng(0))
        true_spike = truth[spike_bucket]
        assert abs(admm[spike_bucket] - true_spike) < abs(sw[spike_bucket] - true_spike)


class TestWaveShapeClaim:
    """'Square Wave has the best utility' among general waves (Theorem 5.3,
    Figure 5)."""

    @pytest.mark.parametrize("ratio", [0.0, 0.4])
    def test_square_beats_shape(self, ratio, beta_50k):
        truth = true_histogram(beta_50k, 128)
        b = 0.2
        square = _mean_w1(
            lambda: WaveEstimator(GeneralWave(1.0, b=b, ratio=1.0), 128),
            beta_50k,
            truth,
        )
        other = _mean_w1(
            lambda: WaveEstimator(GeneralWave(1.0, b=b, ratio=ratio), 128),
            beta_50k,
            truth,
        )
        assert square < other

    def test_wasserstein_separation_theorem(self):
        """Lemma 5.4: output distributions of two inputs separated by Delta
        have Wasserstein distance Delta * (1 - (2b+1) q); SW maximizes it."""
        b = 0.25
        for ratio, better in [(1.0, None), (0.5, 1.0)]:
            gw = GeneralWave(1.0, b=b, ratio=ratio)
            sep = 1.0 - (2 * b + 1) * gw.q
            if better is not None:
                gw_best = GeneralWave(1.0, b=b, ratio=better)
                sep_best = 1.0 - (2 * b + 1) * gw_best.q
                assert sep_best > sep


class TestBandwidthClaim:
    """'Choosing b by mutual information is optimal or close to optimal'
    (Section 6.4, Figure 6)."""

    def test_b_star_near_empirical_optimum(self, beta_50k):
        """The W1-vs-b curve is flat near its minimum (paper Figure 6), so we
        assert b*'s error is within a modest factor of the grid-best error,
        and far better than a clearly-bad bandwidth."""
        eps = 1.0
        truth = true_histogram(beta_50k, 128)
        b_star = optimal_bandwidth(eps)
        grid = [0.02, 0.05, 0.1, 0.15, 0.2, b_star, 0.3, 0.35, 0.4]
        errors = {
            b: _mean_w1(lambda b=b: SWEstimator(eps, 128, b=b), beta_50k, truth, seeds=3)
            for b in grid
        }
        best = min(errors.values())
        assert errors[b_star] <= 1.5 * best, (
            f"b*={b_star:.3f}: W1 {errors[b_star]:.5f} vs best {best:.5f}"
        )
        assert errors[b_star] < errors[0.02]


class TestQuantileClaim:
    """Quantile estimation: SW-EMS is accurate on smooth data (Fig 4 i-l)."""

    def test_quantile_error_small(self, beta_50k):
        truth = true_histogram(beta_50k, 256)
        est = SWEstimator(2.0, 256).fit(beta_50k, rng=np.random.default_rng(0))
        assert quantile_error(truth, est) < 0.02
