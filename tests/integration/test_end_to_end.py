"""End-to-end integration tests across subsystem boundaries."""

import numpy as np
import pytest

from repro import (
    CFOBinning,
    HHADMM,
    SWEstimator,
    estimate_distribution,
    ks_distance,
    load_dataset,
    wasserstein_distance,
)
from tests.conftest import true_histogram


class TestPublicAPI:
    def test_quickstart_flow(self):
        """The README quickstart must work verbatim."""
        values = np.random.default_rng(0).beta(5, 2, 30_000)
        estimator = SWEstimator(epsilon=1.0, d=128)
        histogram = estimator.fit(values)
        assert histogram.shape == (128,)
        assert histogram.sum() == pytest.approx(1.0)

    def test_client_server_separation(self):
        """privatize on 'clients', aggregate on the 'server'."""
        values = np.random.default_rng(1).random(10_000)
        est = SWEstimator(1.0, d=64)
        # Each client randomizes independently.
        reports = np.concatenate(
            [
                est.privatize(chunk, rng=np.random.default_rng(i))
                for i, chunk in enumerate(np.array_split(values, 10))
            ]
        )
        histogram = est.aggregate(reports)
        assert histogram.sum() == pytest.approx(1.0)
        # Uniform data -> roughly uniform estimate.
        assert histogram.max() < 0.1

    def test_every_distribution_method_on_every_dataset(self, rng):
        """Cross-product smoke test at tiny scale."""
        for name in ("beta", "taxi", "income", "retirement"):
            ds = load_dataset(name, n=3000, rng=rng)
            truth = ds.histogram(64)
            for method in (
                SWEstimator(1.0, d=64),
                HHADMM(1.0, d=64),
                CFOBinning(1.0, d=64, bins=16),
            ):
                out = method.fit(ds.values, rng=rng)
                assert out.shape == truth.shape
                assert out.sum() == pytest.approx(1.0)
                assert wasserstein_distance(truth, out) < 0.25


class TestStatisticalConsistency:
    def test_error_decreases_with_population(self):
        """More users -> better estimates (LDP error is O(1/sqrt(n)))."""
        gen = np.random.default_rng(3)
        big = gen.beta(5, 2, 64_000)
        errors = []
        for n in (4_000, 64_000):
            vals = big[:n]
            truth = true_histogram(vals, 64)
            est = SWEstimator(1.0, d=64).fit(vals, rng=np.random.default_rng(0))
            errors.append(wasserstein_distance(truth, est))
        assert errors[1] < errors[0]

    def test_error_decreases_with_epsilon(self, beta_values):
        truth = true_histogram(beta_values, 64)
        errors = []
        for eps in (0.5, 2.5):
            out = estimate_distribution(
                beta_values, eps, d=64, rng=np.random.default_rng(0)
            )
            errors.append(ks_distance(truth, out))
        assert errors[1] < errors[0]

    def test_bimodal_structure_recovered(self, bimodal_values):
        """The reconstruction must find both modes, not merge them."""
        truth = true_histogram(bimodal_values, 64)
        out = SWEstimator(2.0, d=64).fit(
            bimodal_values, rng=np.random.default_rng(0)
        )
        # Peak near 0.25 and 0.75, trough near 0.5.
        left = out[12:20].max()
        right = out[44:52].max()
        trough = out[28:36].min()
        assert left > 3 * trough
        assert right > 3 * trough

    def test_sw_ems_beats_cfo_binning_on_taxi_shape(self):
        """Multi-modal data: SW+EMS resolves structure coarse bins cannot.

        Averaged over seeds — at this reduced n the single-trial errors of
        the two methods overlap, but the means separate cleanly.
        """
        ds = load_dataset("taxi", n=60_000, rng=1)
        truth = ds.histogram(256)
        sw_errs, cfo_errs = [], []
        for seed in range(4):
            sw_errs.append(
                wasserstein_distance(
                    truth,
                    SWEstimator(1.0, d=256).fit(
                        ds.values, rng=np.random.default_rng(seed)
                    ),
                )
            )
            cfo_errs.append(
                wasserstein_distance(
                    truth,
                    CFOBinning(1.0, d=256, bins=16).fit(
                        ds.values, rng=np.random.default_rng(seed)
                    ),
                )
            )
        assert np.mean(sw_errs) < np.mean(cfo_errs)
