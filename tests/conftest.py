"""Shared fixtures and hypothesis configuration for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

# One moderate profile for the whole suite: enough examples to matter,
# no deadline flakiness from numpy warm-up costs.
settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    """Fresh deterministic generator per test."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def beta_values() -> np.ndarray:
    """20k Beta(5,2) draws shared by statistical tests (session-scoped)."""
    return np.random.default_rng(777).beta(5.0, 2.0, 20_000)


@pytest.fixture(scope="session")
def bimodal_values() -> np.ndarray:
    """A clearly bimodal unit-domain sample for reconstruction tests."""
    gen = np.random.default_rng(778)
    left = gen.normal(0.25, 0.05, 10_000)
    right = gen.normal(0.75, 0.08, 10_000)
    vals = np.concatenate([left, right])
    return np.clip(vals, 0.0, 1.0)


def true_histogram(values: np.ndarray, d: int) -> np.ndarray:
    """Exact normalized histogram of unit-domain values."""
    idx = np.minimum((values * d).astype(np.int64), d - 1)
    return np.bincount(idx, minlength=d) / values.size


@pytest.fixture(scope="session")
def beta_hist_64(beta_values) -> np.ndarray:
    return true_histogram(beta_values, 64)
