"""Unit tests for RNG plumbing."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_seed_reproducible(self):
        a = as_generator(42).random(5)
        b = as_generator(42).random(5)
        np.testing.assert_array_equal(a, b)

    def test_generator_passthrough_shares_state(self):
        gen = np.random.default_rng(0)
        same = as_generator(gen)
        assert same is gen

    def test_different_seeds_differ(self):
        assert not np.allclose(as_generator(1).random(5), as_generator(2).random(5))


class TestSpawnGenerators:
    def test_count(self):
        assert len(spawn_generators(0, 5)) == 5

    def test_children_independent(self):
        children = spawn_generators(0, 2)
        a, b = children[0].random(100), children[1].random(100)
        assert abs(np.corrcoef(a, b)[0, 1]) < 0.3

    def test_deterministic_from_seed(self):
        a = [g.random() for g in spawn_generators(7, 3)]
        b = [g.random() for g in spawn_generators(7, 3)]
        assert a == b

    def test_zero_children(self):
        assert spawn_generators(0, 0) == []

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)
