"""Unit and property tests for histogram helpers."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.utils.histograms import (
    bucketize,
    histogram_cdf,
    histogram_mean,
    histogram_quantile,
    histogram_variance,
    normalize_counts,
    uniform_bucket_midpoints,
)


class TestBucketize:
    def test_basic_mapping(self):
        out = bucketize(np.array([0.0, 0.25, 0.5, 0.75]), 4)
        np.testing.assert_array_equal(out, [0, 1, 2, 3])

    def test_one_lands_in_last_bucket(self):
        assert bucketize(np.array([1.0]), 10)[0] == 9

    def test_bucket_edges_go_right(self):
        # 0.5 is the left edge of bucket 1 when d=2.
        assert bucketize(np.array([0.5]), 2)[0] == 1

    @given(
        hnp.arrays(
            np.float64,
            st.integers(1, 50),
            elements=st.floats(0.0, 1.0),
        ),
        st.integers(2, 128),
    )
    def test_always_in_range(self, values, d):
        out = bucketize(values, d)
        assert out.min() >= 0 and out.max() < d


class TestNormalizeCounts:
    def test_sums_to_one(self):
        out = normalize_counts(np.array([1.0, 3.0]))
        np.testing.assert_allclose(out, [0.25, 0.75])

    def test_zero_total_gives_uniform(self):
        np.testing.assert_allclose(normalize_counts(np.zeros(4)), 0.25)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            normalize_counts(np.array([-1.0, 2.0]))


class TestMidpoints:
    def test_values(self):
        np.testing.assert_allclose(uniform_bucket_midpoints(4), [0.125, 0.375, 0.625, 0.875])

    def test_symmetric_around_half(self):
        mids = uniform_bucket_midpoints(17)
        np.testing.assert_allclose(mids + mids[::-1], 1.0)


class TestStatistics:
    def test_cdf_monotone(self):
        cdf = histogram_cdf(np.array([0.2, 0.3, 0.5]))
        np.testing.assert_allclose(cdf, [0.2, 0.5, 1.0])

    def test_mean_uniform_is_half(self):
        assert histogram_mean(np.full(10, 0.1)) == pytest.approx(0.5)

    def test_mean_point_mass(self):
        x = np.zeros(10)
        x[0] = 1.0
        assert histogram_mean(x) == pytest.approx(0.05)

    def test_variance_point_mass_is_zero(self):
        x = np.zeros(8)
        x[3] = 1.0
        assert histogram_variance(x) == pytest.approx(0.0)

    def test_variance_uniform(self):
        # Discrete uniform on midpoints approximates 1/12.
        var = histogram_variance(np.full(1000, 1e-3))
        assert var == pytest.approx(1.0 / 12.0, rel=1e-4)

    def test_variance_matches_numpy_weighted(self):
        x = np.array([0.1, 0.2, 0.3, 0.4])
        mids = uniform_bucket_midpoints(4)
        expected = np.average((mids - np.average(mids, weights=x)) ** 2, weights=x)
        assert histogram_variance(x) == pytest.approx(expected)


class TestQuantile:
    def test_median_of_uniform(self):
        assert histogram_quantile(np.full(10, 0.1), 0.5) == pytest.approx(0.5)

    def test_beta_zero_returns_zero(self):
        assert histogram_quantile(np.array([0.5, 0.5]), 0.0) == 0.0

    def test_beta_one_returns_one(self):
        assert histogram_quantile(np.array([0.5, 0.5]), 1.0) == 1.0

    def test_point_mass_quantiles(self):
        x = np.zeros(4)
        x[2] = 1.0  # all mass in [0.5, 0.75)
        assert histogram_quantile(x, 0.5) == pytest.approx(0.5)

    def test_rejects_bad_beta(self):
        with pytest.raises(ValueError):
            histogram_quantile(np.array([1.0]), 1.5)

    @given(
        hnp.arrays(np.float64, st.integers(2, 40), elements=st.floats(0.0, 1.0)),
        st.floats(0.0, 1.0),
    )
    def test_quantile_monotone_in_beta(self, raw, beta):
        total = raw.sum()
        if total == 0:
            return
        x = raw / total
        smaller = histogram_quantile(x, beta / 2.0)
        larger = histogram_quantile(x, beta)
        assert smaller <= larger
