"""Unit tests for argument validators."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_domain_size,
    check_epsilon,
    check_probability_vector,
    check_unit_values,
)


class TestCheckEpsilon:
    def test_accepts_positive(self):
        assert check_epsilon(1.0) == 1.0

    def test_accepts_integer(self):
        assert check_epsilon(2) == 2.0

    @pytest.mark.parametrize("bad", [0.0, -1.0, float("inf"), float("nan")])
    def test_rejects_nonpositive_and_nonfinite(self, bad):
        with pytest.raises(ValueError, match="epsilon"):
            check_epsilon(bad)


class TestCheckDomainSize:
    def test_accepts_int(self):
        assert check_domain_size(16) == 16

    def test_accepts_integral_float(self):
        assert check_domain_size(16.0) == 16

    def test_rejects_fractional(self):
        with pytest.raises(ValueError, match="integer"):
            check_domain_size(16.5)

    def test_rejects_below_minimum(self):
        with pytest.raises(ValueError, match=">= 2"):
            check_domain_size(1)

    def test_custom_minimum(self):
        assert check_domain_size(1, minimum=1) == 1

    def test_custom_name_in_message(self):
        with pytest.raises(ValueError, match="bins"):
            check_domain_size(0, name="bins")


class TestCheckUnitValues:
    def test_accepts_unit_interval(self):
        out = check_unit_values(np.array([0.0, 0.5, 1.0]))
        assert out.dtype == np.float64

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            check_unit_values(np.array([0.5, 1.2]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match=r"\[0, 1\]"):
            check_unit_values(np.array([-0.1, 0.2]))

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_unit_values(np.array([]))

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="1-dimensional"):
            check_unit_values(np.zeros((3, 3)))

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_unit_values(np.array([0.1, np.nan]))


class TestCheckProbabilityVector:
    def test_accepts_simplex(self):
        check_probability_vector(np.array([0.25, 0.25, 0.5]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            check_probability_vector(np.array([-0.1, 0.6, 0.5]))

    def test_rejects_wrong_sum(self):
        with pytest.raises(ValueError, match="sum to 1"):
            check_probability_vector(np.array([0.3, 0.3]))

    def test_tolerance_respected(self):
        check_probability_vector(np.array([0.5, 0.5 + 1e-8]))
