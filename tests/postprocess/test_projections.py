"""Unit and property tests for Euclidean projections."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.postprocess.projections import project_nonnegative, project_simplex

finite_vectors = hnp.arrays(
    np.float64,
    st.integers(1, 64),
    elements=st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False),
)


class TestProjectSimplex:
    def test_interior_point_unchanged(self):
        x = np.array([0.2, 0.3, 0.5])
        np.testing.assert_allclose(project_simplex(x), x)

    def test_known_projection(self):
        # Projection of (1, 1) onto the simplex is (0.5, 0.5).
        np.testing.assert_allclose(project_simplex(np.array([1.0, 1.0])), 0.5)

    def test_large_negative_dropped(self):
        out = project_simplex(np.array([2.0, -5.0]))
        np.testing.assert_allclose(out, [1.0, 0.0])

    def test_total_zero(self):
        np.testing.assert_allclose(project_simplex(np.array([1.0, 2.0]), total=0.0), 0.0)

    def test_custom_total(self):
        out = project_simplex(np.array([5.0, 1.0]), total=4.0)
        assert out.sum() == pytest.approx(4.0)

    @given(finite_vectors)
    def test_output_in_simplex(self, v):
        out = project_simplex(v)
        assert (out >= 0).all()
        assert out.sum() == pytest.approx(1.0, abs=1e-9)

    @given(finite_vectors)
    def test_idempotent(self, v):
        once = project_simplex(v)
        np.testing.assert_allclose(project_simplex(once), once, atol=1e-9)

    @given(finite_vectors)
    def test_is_closest_point_vs_random_candidates(self, v):
        """The projection is no farther from v than other simplex points."""
        out = project_simplex(v)
        gen = np.random.default_rng(0)
        for _ in range(5):
            candidate = gen.dirichlet(np.ones(v.size))
            assert np.linalg.norm(out - v) <= np.linalg.norm(candidate - v) + 1e-9


class TestProjectNonnegative:
    def test_clamps(self):
        np.testing.assert_allclose(
            project_nonnegative(np.array([-1.0, 2.0])), [0.0, 2.0]
        )

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            project_nonnegative(np.array([np.nan]))
