"""Unit and property tests for the Norm-variant post-processors."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.postprocess.variants import base_cut, norm_cut, norm_full, norm_mul

finite_vectors = hnp.arrays(
    np.float64,
    st.integers(1, 64),
    elements=st.floats(-5.0, 5.0, allow_nan=False, allow_infinity=False),
)


class TestNormFull:
    def test_shifts_to_target(self):
        out = norm_full(np.array([0.1, 0.3]), total=1.0)
        np.testing.assert_allclose(out, [0.4, 0.6])

    def test_preserves_differences(self, rng):
        v = rng.normal(size=10)
        out = norm_full(v)
        np.testing.assert_allclose(np.diff(out), np.diff(v), atol=1e-12)

    def test_keeps_negatives(self):
        out = norm_full(np.array([-2.0, 1.0]), total=1.0)
        assert out[0] < 0

    @given(finite_vectors)
    def test_sums_to_target(self, v):
        assert norm_full(v).sum() == pytest.approx(1.0, abs=1e-8)


class TestNormMul:
    def test_rescales_positives(self):
        out = norm_mul(np.array([-0.5, 1.0, 3.0]))
        np.testing.assert_allclose(out, [0.0, 0.25, 0.75])

    def test_uniform_fallback(self):
        np.testing.assert_allclose(norm_mul(np.array([-1.0, -2.0])), 0.5)

    def test_preserves_ratios(self):
        out = norm_mul(np.array([1.0, 2.0, 5.0]))
        assert out[2] / out[1] == pytest.approx(2.5)

    @given(finite_vectors)
    def test_output_is_distribution(self, v):
        out = norm_mul(v)
        assert (out >= 0).all()
        assert out.sum() == pytest.approx(1.0, abs=1e-8)


class TestNormCut:
    def test_keeps_large_entries_exactly(self):
        v = np.array([0.6, 0.5, 0.3, -0.2])
        out = norm_cut(v)
        # 0.6 passes through untouched; 0.5 is trimmed to 0.4; rest zeroed.
        assert out[0] == pytest.approx(0.6)
        assert out[1] == pytest.approx(0.4)
        assert out[2] == 0.0 and out[3] == 0.0

    def test_deficit_falls_back_to_mul(self):
        v = np.array([0.2, 0.3])
        np.testing.assert_allclose(norm_cut(v), [0.4, 0.6])

    def test_spike_preservation_vs_norm_sub(self):
        """The motivating property: a dominant spike survives norm_cut
        unchanged, while Norm-Sub shaves it."""
        from repro.postprocess.norm_sub import norm_sub

        v = np.array([0.9, 0.4, 0.4, -0.1, -0.2])
        cut = norm_cut(v)
        sub = norm_sub(v)
        assert cut[0] == pytest.approx(0.9)
        assert sub[0] < 0.9

    @given(finite_vectors)
    def test_output_is_distribution(self, v):
        out = norm_cut(v)
        assert (out >= -1e-12).all()
        assert out.sum() == pytest.approx(1.0, abs=1e-8)


class TestBaseCut:
    def test_thresholding(self):
        out = base_cut(np.array([0.05, 0.2, -0.1]), threshold=0.1)
        np.testing.assert_allclose(out, [0.0, 0.2, 0.0])

    def test_zero_threshold_keeps_nonnegative(self):
        out = base_cut(np.array([0.3, -0.3]), threshold=0.0)
        np.testing.assert_allclose(out, [0.3, 0.0])

    def test_rejects_negative_threshold(self):
        with pytest.raises(ValueError):
            base_cut(np.array([1.0]), threshold=-1.0)

    def test_noise_suppression(self, rng):
        """Entries that are pure noise get zeroed at 2-sigma threshold."""
        truth = np.zeros(100)
        truth[7] = 1.0
        noisy = truth + rng.normal(0, 0.01, 100)
        out = base_cut(noisy, threshold=0.02)
        assert out[7] > 0.9
        assert (out[np.arange(100) != 7] == 0).mean() > 0.9
