"""Unit and property tests for Norm-Sub."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.postprocess.norm_sub import norm_sub
from repro.postprocess.projections import project_simplex

finite_vectors = hnp.arrays(
    np.float64,
    st.integers(1, 64),
    elements=st.floats(-10.0, 10.0, allow_nan=False, allow_infinity=False),
)


class TestNormSubBasics:
    def test_already_valid_with_surplus_untouched(self):
        x = np.array([0.25, 0.25, 0.5])
        np.testing.assert_allclose(norm_sub(x), x)

    def test_negative_zeroed(self):
        out = norm_sub(np.array([-0.2, 0.6, 0.6]))
        assert out[0] == 0.0
        assert out.sum() == pytest.approx(1.0)

    def test_cascading_rounds(self):
        # The first subtraction pushes the small positive negative,
        # requiring a second round.
        out = norm_sub(np.array([0.05, 1.2, 1.15]))
        assert (out >= 0).all()
        assert out.sum() == pytest.approx(1.0)

    def test_all_negative_gives_uniform(self):
        np.testing.assert_allclose(norm_sub(np.array([-1.0, -2.0])), 0.5)

    def test_deficit_adds_to_positives_only(self):
        out = norm_sub(np.array([0.1, 0.1, -0.5]))
        assert out[2] == 0.0
        assert out[0] == pytest.approx(out[1]) == pytest.approx(0.5)

    def test_count_scale(self):
        out = norm_sub(np.array([30.0, -10.0, 90.0]), total=100.0)
        assert out.sum() == pytest.approx(100.0)

    def test_total_zero(self):
        out = norm_sub(np.array([0.5, -0.5]), total=0.0)
        assert (out >= 0).all()
        assert out.sum() == pytest.approx(0.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            norm_sub(np.array([np.nan, 1.0]))

    def test_rejects_negative_total(self):
        with pytest.raises(ValueError):
            norm_sub(np.array([1.0]), total=-1.0)


class TestNormSubProperties:
    @given(finite_vectors)
    def test_output_is_distribution(self, v):
        out = norm_sub(v)
        assert (out >= 0).all()
        assert out.sum() == pytest.approx(1.0, abs=1e-9)

    @given(finite_vectors)
    def test_idempotent(self, v):
        once = norm_sub(v)
        twice = norm_sub(once)
        np.testing.assert_allclose(once, twice, atol=1e-9)

    @given(finite_vectors)
    def test_order_preserved(self, v):
        """Norm-Sub never swaps the order of two estimates."""
        out = norm_sub(v)
        idx = np.argsort(v, kind="stable")
        sorted_out = out[idx]
        assert (np.diff(sorted_out) >= -1e-9).all()

    @given(finite_vectors)
    def test_matches_simplex_projection_in_surplus_regime(self, v):
        """When mass must be removed, Norm-Sub's fixpoint is the Euclidean
        simplex projection (water-filling)."""
        positive_sum = v[v > 0].sum()
        if positive_sum <= 1.0:  # deficit regime differs by design
            return
        np.testing.assert_allclose(norm_sub(v), project_simplex(v), atol=1e-8)
