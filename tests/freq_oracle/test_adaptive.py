"""Unit tests for the GRR/OLH variance-based choice."""

import math

import pytest

from repro.freq_oracle.adaptive import best_oracle_name, choose_oracle
from repro.freq_oracle.grr import GRR
from repro.freq_oracle.olh import OLH


class TestBestOracleName:
    def test_small_domain_grr(self):
        assert best_oracle_name(1.0, 4) == "grr"

    def test_large_domain_olh(self):
        assert best_oracle_name(1.0, 1024) == "olh"

    def test_threshold_exact(self):
        # GRR wins iff d - 2 < 3 e^eps.
        eps = 1.0
        boundary = int(3 * math.exp(eps)) + 2  # first d where OLH wins or ties
        assert best_oracle_name(eps, boundary - 1) == "grr"
        assert best_oracle_name(eps, boundary + 1) == "olh"

    def test_higher_epsilon_extends_grr(self):
        d = 50
        assert best_oracle_name(1.0, d) == "olh"
        assert best_oracle_name(3.0, d) == "grr"


class TestChooseOracle:
    def test_returns_grr_instance(self):
        assert isinstance(choose_oracle(1.0, 4), GRR)

    def test_returns_olh_instance(self):
        assert isinstance(choose_oracle(1.0, 1024), OLH)

    def test_choice_minimizes_variance(self):
        for eps in (0.5, 1.0, 2.0):
            for d in (4, 16, 64, 256):
                chosen = choose_oracle(eps, d)
                alt = GRR(eps, d) if isinstance(chosen, OLH) else OLH(eps, d)
                assert chosen.estimate_variance <= alt.estimate_variance + 1e-12

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            choose_oracle(-1.0, 4)
        with pytest.raises(ValueError):
            choose_oracle(1.0, 1)
