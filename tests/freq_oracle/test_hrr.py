"""Unit and statistical tests for Hadamard Randomized Response and the FWHT."""

import numpy as np
import pytest

from repro.freq_oracle.hrr import HRR, fwht, next_power_of_two


class TestNextPowerOfTwo:
    @pytest.mark.parametrize("d,expected", [(1, 1), (2, 2), (3, 4), (8, 8), (9, 16), (1000, 1024)])
    def test_values(self, d, expected):
        assert next_power_of_two(d) == expected

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestFWHT:
    def test_matches_explicit_hadamard(self, rng):
        m = 16
        h = np.array(
            [[(-1) ** bin(i & j).count("1") for j in range(m)] for i in range(m)],
            dtype=float,
        )
        vec = rng.normal(size=m)
        np.testing.assert_allclose(fwht(vec), h @ vec, atol=1e-10)

    def test_involution_up_to_scale(self, rng):
        vec = rng.normal(size=32)
        np.testing.assert_allclose(fwht(fwht(vec)) / 32, vec, atol=1e-10)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            fwht(np.ones(6))

    def test_does_not_mutate_input(self):
        vec = np.ones(4)
        fwht(vec)
        np.testing.assert_array_equal(vec, np.ones(4))


class TestHRR:
    def test_pads_to_power_of_two(self):
        assert HRR(1.0, 10).m == 16

    def test_unbiased_unsigned(self, rng):
        hrr = HRR(1.0, 16)
        truth = np.zeros(16)
        truth[2], truth[9] = 0.7, 0.3
        values = rng.choice(16, size=100_000, p=truth)
        est = hrr.estimate_from_values(values, rng=rng)
        empirical = np.bincount(values, minlength=16) / values.size
        np.testing.assert_allclose(est, empirical, atol=0.03)

    def test_unbiased_signed(self, rng):
        """Signed one-hot contributions recover the signed frequency vector,
        the property HaarHRR depends on."""
        hrr = HRR(2.0, 8)
        n = 120_000
        values = rng.integers(0, 8, n)
        signs = np.where(rng.random(n) < 0.5, 1, -1)
        reports = hrr.privatize(values, rng=rng, signs=signs)
        est = hrr.aggregate(reports)
        truth = np.zeros(8)
        np.add.at(truth, values, signs / n)
        np.testing.assert_allclose(est, truth, atol=0.03)

    def test_degenerate_domain_size_one(self, rng):
        """d=1: pure sign estimation (the top Haar layer)."""
        hrr = HRR(2.0, 1)
        n = 50_000
        signs = np.where(rng.random(n) < 0.8, 1, -1)
        reports = hrr.privatize(np.zeros(n, dtype=np.int64), rng=rng, signs=signs)
        est = hrr.aggregate(reports)
        assert est[0] == pytest.approx(signs.mean(), abs=0.03)

    def test_bits_are_plus_minus_one(self, rng):
        hrr = HRR(1.0, 8)
        reports = hrr.privatize(rng.integers(0, 8, 100), rng=rng)
        assert set(np.unique(reports.bit)) <= {-1, 1}

    def test_rejects_bad_signs(self, rng):
        hrr = HRR(1.0, 8)
        with pytest.raises(ValueError, match="signs"):
            hrr.privatize(np.array([0, 1]), rng=rng, signs=np.array([2, 1]))

    def test_rejects_mismatched_signs(self, rng):
        hrr = HRR(1.0, 8)
        with pytest.raises(ValueError, match="shape"):
            hrr.privatize(np.array([0, 1]), rng=rng, signs=np.array([1]))

    def test_flip_rate_matches_p(self, rng):
        hrr = HRR(1.0, 2)
        n = 60_000
        values = np.zeros(n, dtype=np.int64)
        reports = hrr.privatize(values, rng=rng)
        # For value 0, H[j, 0] = +1 for every row, so the unperturbed bit is
        # always +1; the observed +1 rate is exactly p.
        assert (reports.bit == 1).mean() == pytest.approx(hrr.p, abs=0.01)
