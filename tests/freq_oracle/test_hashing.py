"""Unit tests for the universal hash family used by OLH."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.freq_oracle.hashing import PRIME, evaluate_hash, sample_hash_params


class TestSampleHashParams:
    def test_ranges(self, rng):
        a, b = sample_hash_params(10_000, rng=rng)
        assert a.min() >= 1 and a.max() < PRIME
        assert b.min() >= 0 and b.max() < PRIME

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            sample_hash_params(0)


class TestEvaluateHash:
    def test_output_range(self, rng):
        a, b = sample_hash_params(100, rng=rng)
        out = evaluate_hash(a, b, np.arange(100) % 7, g=4)
        assert out.min() >= 0 and out.max() < 4

    def test_deterministic(self):
        a = np.array([12345])
        b = np.array([678])
        v = np.array([42])
        assert evaluate_hash(a, b, v, 8) == evaluate_hash(a, b, v, 8)

    def test_broadcasting_matrix(self, rng):
        a, b = sample_hash_params(5, rng=rng)
        domain = np.arange(10)[None, :]
        out = evaluate_hash(a[:, None], b[:, None], domain, g=3)
        assert out.shape == (5, 10)

    def test_roughly_uniform_over_g(self, rng):
        """Pairwise-independent family: a fixed input hashes uniformly over
        {0..g-1} across random (a, b)."""
        a, b = sample_hash_params(40_000, rng=rng)
        out = evaluate_hash(a, b, np.full(40_000, 17), g=4)
        freqs = np.bincount(out, minlength=4) / out.size
        np.testing.assert_allclose(freqs, 0.25, atol=0.01)

    def test_no_overflow_for_large_inputs(self):
        a = np.array([PRIME - 1], dtype=np.int64)
        b = np.array([PRIME - 1], dtype=np.int64)
        out = evaluate_hash(a, b, np.array([2**20], dtype=np.int64), g=16)
        assert 0 <= out[0] < 16

    def test_rejects_small_g(self):
        with pytest.raises(ValueError):
            evaluate_hash(np.array([1]), np.array([0]), np.array([0]), g=1)

    @given(st.integers(0, 2**16), st.integers(2, 64))
    def test_collision_rate_pairwise(self, value, g):
        """Two distinct values collide with probability ~ 1/g."""
        gen = np.random.default_rng(0)
        a, b = sample_hash_params(5000, rng=gen)
        h1 = evaluate_hash(a, b, np.full(5000, value), g)
        h2 = evaluate_hash(a, b, np.full(5000, value + 1), g)
        rate = (h1 == h2).mean()
        assert rate == pytest.approx(1.0 / g, abs=4.0 * np.sqrt(1.0 / g / 5000) + 0.01)
