"""Unit and statistical tests for Generalized Randomized Response."""

import math

import numpy as np
import pytest

from repro.freq_oracle.grr import GRR
from repro.privacy.audit import audit_matrix


class TestGRRParameters:
    def test_probabilities(self):
        grr = GRR(math.log(3.0), 4)
        assert grr.p == pytest.approx(3.0 / 6.0)
        assert grr.q == pytest.approx(1.0 / 6.0)

    def test_p_q_ratio_is_e_eps(self):
        grr = GRR(1.7, 10)
        assert grr.p / grr.q == pytest.approx(math.exp(1.7))

    def test_total_probability(self):
        grr = GRR(1.0, 5)
        assert grr.p + (grr.d - 1) * grr.q == pytest.approx(1.0)

    def test_variance_formula(self):
        grr = GRR(1.0, 10)
        e = math.exp(1.0)
        assert grr.estimate_variance == pytest.approx((10 - 2 + e) / (e - 1) ** 2)


class TestGRRPrivatize:
    def test_reports_in_domain(self, rng):
        grr = GRR(1.0, 6)
        reports = grr.privatize(rng.integers(0, 6, 1000), rng=rng)
        assert reports.min() >= 0 and reports.max() < 6

    def test_keep_rate_matches_p(self, rng):
        grr = GRR(2.0, 4)
        values = np.full(60_000, 2)
        reports = grr.privatize(values, rng=rng)
        assert (reports == 2).mean() == pytest.approx(grr.p, abs=0.01)

    def test_other_values_uniform(self, rng):
        grr = GRR(1.0, 4)
        values = np.zeros(80_000, dtype=np.int64)
        reports = grr.privatize(values, rng=rng)
        others = np.bincount(reports[reports != 0], minlength=4)[1:]
        np.testing.assert_allclose(others / others.sum(), 1 / 3, atol=0.02)

    def test_rejects_out_of_domain(self, rng):
        with pytest.raises(ValueError):
            GRR(1.0, 4).privatize(np.array([4]), rng=rng)

    def test_rejects_fractional(self, rng):
        with pytest.raises(ValueError):
            GRR(1.0, 4).privatize(np.array([0.5]), rng=rng)


class TestGRRAggregate:
    def test_unbiased(self, rng):
        grr = GRR(1.0, 8)
        truth = np.array([0.5, 0.2, 0.1, 0.05, 0.05, 0.05, 0.03, 0.02])
        values = rng.choice(8, size=100_000, p=truth)
        est = grr.estimate_from_values(values, rng=rng)
        empirical = np.bincount(values, minlength=8) / values.size
        np.testing.assert_allclose(est, empirical, atol=0.02)

    def test_estimates_sum_near_one(self, rng):
        grr = GRR(1.0, 8)
        est = grr.estimate_from_values(rng.integers(0, 8, 50_000), rng=rng)
        assert est.sum() == pytest.approx(1.0, abs=1e-9)

    def test_empirical_variance_matches_formula(self):
        grr = GRR(1.0, 16)
        n = 20_000
        values = np.zeros(n, dtype=np.int64)
        estimates = [
            grr.estimate_from_values(values, rng=np.random.default_rng(s))[5]
            for s in range(60)
        ]
        empirical = np.var(estimates)
        assert empirical == pytest.approx(grr.estimate_variance / n, rel=0.6)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            GRR(1.0, 4).aggregate(np.array([], dtype=np.int64))


class TestGRRPrivacy:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 3.0])
    def test_matrix_satisfies_ldp(self, epsilon):
        grr = GRR(epsilon, 6)
        matrix = np.full((6, 6), grr.q)
        np.fill_diagonal(matrix, grr.p)
        result = audit_matrix(matrix, epsilon)
        assert result.satisfied
        assert result.max_ratio == pytest.approx(math.exp(epsilon))
