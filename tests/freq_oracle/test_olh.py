"""Unit and statistical tests for Optimized Local Hashing."""

import math

import numpy as np
import pytest

from repro.freq_oracle.olh import OLH, OLHReports


class TestOLHParameters:
    def test_default_g(self):
        olh = OLH(1.0, 100)
        assert olh.g == int(round(math.exp(1.0))) + 1

    def test_custom_g(self):
        assert OLH(1.0, 100, g=5).g == 5

    def test_g_at_least_two(self):
        with pytest.raises(ValueError):
            OLH(1.0, 100, g=1)

    def test_variance_independent_of_d(self):
        assert OLH(1.0, 10).estimate_variance == OLH(1.0, 10_000).estimate_variance

    def test_variance_formula(self):
        e = math.exp(2.0)
        assert OLH(2.0, 50).estimate_variance == pytest.approx(4 * e / (e - 1) ** 2)

    def test_variance_beats_grr_on_large_domain(self):
        from repro.freq_oracle.grr import GRR

        assert OLH(1.0, 1000).estimate_variance < GRR(1.0, 1000).estimate_variance


class TestOLHPrivatize:
    def test_report_structure(self, rng):
        olh = OLH(1.0, 50)
        reports = olh.privatize(rng.integers(0, 50, 100), rng=rng)
        assert isinstance(reports, OLHReports)
        assert reports.n == 100
        assert reports.y.min() >= 0 and reports.y.max() < olh.g

    def test_distinct_hash_functions_per_user(self, rng):
        olh = OLH(1.0, 50)
        reports = olh.privatize(rng.integers(0, 50, 1000), rng=rng)
        assert np.unique(reports.a).size > 900  # collisions are rare


class TestOLHAggregate:
    def test_unbiased(self, rng):
        olh = OLH(1.0, 32)
        truth = np.zeros(32)
        truth[3], truth[17], truth[31] = 0.6, 0.3, 0.1
        values = rng.choice(32, size=100_000, p=truth)
        est = olh.estimate_from_values(values, rng=rng)
        empirical = np.bincount(values, minlength=32) / values.size
        np.testing.assert_allclose(est, empirical, atol=0.03)

    def test_empirical_variance_matches_formula(self):
        olh = OLH(1.0, 32)
        n = 20_000
        values = np.zeros(n, dtype=np.int64)
        estimates = [
            olh.estimate_from_values(values, rng=np.random.default_rng(s))[10]
            for s in range(60)
        ]
        assert np.var(estimates) == pytest.approx(olh.estimate_variance / n, rel=0.6)

    def test_chunked_aggregation_matches_small(self, rng):
        """Chunked support counting must equal a direct dense computation."""
        from repro.freq_oracle.hashing import evaluate_hash

        olh = OLH(1.0, 20)
        values = rng.integers(0, 20, 500)
        reports = olh.privatize(values, rng=rng)
        dense = (
            evaluate_hash(
                reports.a[:, None], reports.b[:, None], np.arange(20)[None, :], olh.g
            )
            == reports.y[:, None]
        ).sum(axis=0)
        np.testing.assert_array_equal(olh.support_counts(reports), dense)

    def test_mismatched_report_arrays_rejected(self):
        with pytest.raises(ValueError):
            OLHReports(a=np.zeros(3), b=np.zeros(3), y=np.zeros(2))
