"""Tests validating the closed-form error theory against simulation."""

import numpy as np
import pytest

from repro.analysis.theory import (
    grr_variance,
    hierarchy_level_variance,
    hrr_variance,
    olh_variance,
    oracle_crossover_domain,
    pm_variance,
    pm_worst_case_variance,
    range_query_std,
    required_population,
    sr_variance,
    sw_exact_mutual_information,
)
from repro.core.bandwidth import mutual_information_bound, optimal_bandwidth
from repro.core.square_wave import SquareWave


class TestOracleVariances:
    def test_match_oracle_properties(self):
        from repro.freq_oracle import GRR, HRR, OLH

        assert grr_variance(1.0, 32) == GRR(1.0, 32).estimate_variance
        assert olh_variance(1.0) == OLH(1.0, 32).estimate_variance
        assert hrr_variance(1.0) == HRR(1.0, 32).estimate_variance

    def test_crossover_consistent_with_adaptive_choice(self):
        from repro.freq_oracle.adaptive import best_oracle_name

        for eps in (0.5, 1.0, 2.0):
            boundary = oracle_crossover_domain(eps)
            assert best_oracle_name(eps, boundary) == "olh"
            assert best_oracle_name(eps, boundary - 1) == "grr"

    def test_grr_variance_empirical(self):
        """Formula vs simulated estimator variance."""
        from repro.freq_oracle import GRR

        eps, d, n = 1.0, 8, 50_000
        values = np.zeros(n, dtype=np.int64)
        samples = [
            GRR(eps, d).estimate_from_values(values, rng=np.random.default_rng(s))[3]
            for s in range(80)
        ]
        assert np.var(samples) == pytest.approx(grr_variance(eps, d) / n, rel=0.5)


class TestMeanMechanismVariances:
    @pytest.mark.parametrize("v", [-0.8, 0.0, 0.5])
    def test_sr_variance_empirical(self, v, rng):
        from repro.mean.stochastic_rounding import StochasticRounding

        sr = StochasticRounding(1.0)
        reports = sr.debias(sr.privatize(np.full(200_000, v), rng=rng))
        assert reports.var() == pytest.approx(sr_variance(1.0, v), rel=0.05)

    @pytest.mark.parametrize("v", [-1.0, 0.0, 0.7])
    def test_pm_variance_empirical(self, v, rng):
        from repro.mean.piecewise import PiecewiseMechanism

        pm = PiecewiseMechanism(1.0)
        reports = pm.privatize(np.full(200_000, v), rng=rng)
        assert reports.var() == pytest.approx(pm_variance(1.0, v), rel=0.05)

    def test_worst_case_at_extreme(self):
        assert pm_worst_case_variance(2.0) == pm_variance(2.0, 1.0)
        assert pm_variance(2.0, 1.0) > pm_variance(2.0, 0.0)

    def test_pm_beats_sr_at_large_epsilon(self):
        """The paper's Section 2.2 comparison: PM better for large eps."""
        assert pm_worst_case_variance(4.0) < sr_variance(4.0, 1.0) + 1.0
        # At small epsilon SR is competitive.
        assert sr_variance(0.5, 0.0) < pm_variance(0.5, 0.0) * 10


class TestHierarchyPlanning:
    def test_level_variance_scales_inversely_with_users(self):
        assert hierarchy_level_variance(1.0, 64, 2000) == pytest.approx(
            hierarchy_level_variance(1.0, 64, 1000) / 2
        )

    def test_range_query_std_decreases_with_n(self):
        assert range_query_std(1.0, 256, 100_000) < range_query_std(1.0, 256, 10_000)

    def test_range_query_std_empirical_order(self):
        """Prediction within a factor of ~3 of simulated HH error."""
        from repro.hierarchy.hh import HierarchicalHistogram

        eps, d, n = 1.0, 64, 30_000
        values = np.random.default_rng(0).random(n)
        truth = np.bincount((values * d).astype(int).clip(0, d - 1), minlength=d) / n
        true_mass = truth[:13].sum()
        errors = []
        for seed in range(6):
            hh = HierarchicalHistogram(eps, d=d, branching=4)
            hh.fit(values, rng=np.random.default_rng(seed))
            errors.append(hh.range_query(0.0, 0.2) - true_mass)
        predicted = range_query_std(eps, d, n, branching=4, range_fraction=0.2)
        empirical = np.std(errors)
        assert empirical < 3 * predicted
        assert empirical > predicted / 10

    def test_required_population_roundtrip(self):
        n = required_population(1.0, target_std=0.01)
        assert olh_variance(1.0) / n <= 0.01**2 * 1.001

    def test_bad_inputs(self):
        with pytest.raises(ValueError):
            required_population(1.0, target_std=0.0)
        with pytest.raises(ValueError):
            range_query_std(1.0, 100, 1000, branching=4)


class TestExactMutualInformation:
    def test_below_upper_bound(self):
        """The paper's bound (uniform output) dominates the exact MI."""
        eps = 1.0
        b = optimal_bandwidth(eps)
        sw = SquareWave(eps, b=b)
        m = sw.transition_matrix(64, 64)
        x = np.random.default_rng(0).dirichlet(np.ones(64))
        exact = sw_exact_mutual_information(m, x)
        assert 0.0 < exact <= mutual_information_bound(eps, b) + 1e-9

    def test_zero_for_uninformative_mechanism(self):
        # A constant-column matrix reveals nothing about the input.
        m = np.full((8, 4), 1.0 / 8)
        x = np.full(4, 0.25)
        assert sw_exact_mutual_information(m, x) == pytest.approx(0.0)

    def test_identity_mechanism_gives_entropy(self):
        x = np.array([0.5, 0.25, 0.25])
        expected = -(x * np.log(x)).sum()
        assert sw_exact_mutual_information(np.eye(3), x) == pytest.approx(expected)

    def test_more_epsilon_more_information(self):
        x = np.random.default_rng(1).dirichlet(np.ones(32))
        values = []
        for eps in (0.5, 1.0, 2.0):
            sw = SquareWave(eps)
            values.append(sw_exact_mutual_information(sw.transition_matrix(32, 32), x))
        assert values[0] < values[1] < values[2]
