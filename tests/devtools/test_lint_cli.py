"""CLI behavior: output format, exit codes, baseline round-trips."""

import json
from pathlib import Path

from repro.devtools.baseline import Baseline, BaselineEntry
from repro.devtools.lint import main

_BAD_RNG = "import numpy as np\n\ndef f(x):\n    np.random.shuffle(x)\n"
_CLEAN = "import numpy as np\n\ndef f(rng):\n    return np.random.default_rng(rng)\n"


def write(tmp_path: Path, rel: str, source: str) -> Path:
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return target


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, monkeypatch, capsys):
        write(tmp_path, "src/mod.py", _CLEAN)
        monkeypatch.chdir(tmp_path)
        assert main(["src"]) == 0
        out = capsys.readouterr().out
        assert "0 findings" in out

    def test_finding_exits_nonzero(self, tmp_path, monkeypatch, capsys):
        write(tmp_path, "src/mod.py", _BAD_RNG)
        monkeypatch.chdir(tmp_path)
        assert main(["src"]) == 1
        out = capsys.readouterr().out
        assert "src/mod.py:4:4 RNG001" in out

    def test_missing_path_is_usage_error(self, tmp_path, monkeypatch, capsys):
        monkeypatch.chdir(tmp_path)
        assert main(["no-such-dir"]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in (
            "RNG001",
            "PRIV001",
            "PRIV002",
            "NUM001",
            "NUM002",
            "NUM003",
            "REG001",
        ):
            assert code in out

    def test_quiet_omits_summary(self, tmp_path, monkeypatch, capsys):
        write(tmp_path, "src/mod.py", _CLEAN)
        monkeypatch.chdir(tmp_path)
        assert main(["src", "--quiet"]) == 0
        assert "reprolint:" not in capsys.readouterr().out


class TestOutputFormat:
    def test_ruff_style_lines(self, tmp_path, monkeypatch, capsys):
        write(tmp_path, "src/mod.py", _BAD_RNG)
        monkeypatch.chdir(tmp_path)
        main(["src"])
        line = capsys.readouterr().out.splitlines()[0]
        location, _, rest = line.partition(" ")
        path, lineno, col = location.rsplit(":", 2)
        assert path == "src/mod.py"
        assert lineno.isdigit() and col.isdigit()
        assert rest.startswith("RNG001 ")


class TestBaseline:
    def test_baselined_finding_passes(self, tmp_path, monkeypatch, capsys):
        write(tmp_path, "src/mod.py", _BAD_RNG)
        baseline = Baseline(
            entries=[
                BaselineEntry(
                    rule="RNG001",
                    path="src/mod.py",
                    line_text="np.random.shuffle(x)",
                    reason="fixture: grandfathered for the test",
                )
            ]
        )
        baseline.save(tmp_path / "reprolint-baseline.json")
        monkeypatch.chdir(tmp_path)
        assert main(["src"]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_baseline_survives_line_drift(self, tmp_path, monkeypatch):
        # Same statement, different line number: the entry still matches.
        write(tmp_path, "src/mod.py", "import numpy as np\n\n\n\ndef f(x):\n    np.random.shuffle(x)\n")
        Baseline(
            entries=[
                BaselineEntry(
                    rule="RNG001",
                    path="src/mod.py",
                    line_text="np.random.shuffle(x)",
                    reason="fixture",
                )
            ]
        ).save(tmp_path / "reprolint-baseline.json")
        monkeypatch.chdir(tmp_path)
        assert main(["src"]) == 0

    def test_stale_entry_fails(self, tmp_path, monkeypatch, capsys):
        write(tmp_path, "src/mod.py", _CLEAN)
        Baseline(
            entries=[
                BaselineEntry(
                    rule="RNG001",
                    path="src/mod.py",
                    line_text="np.random.shuffle(x)",
                    reason="fixed long ago",
                )
            ]
        ).save(tmp_path / "reprolint-baseline.json")
        monkeypatch.chdir(tmp_path)
        assert main(["src"]) == 1
        assert "stale baseline entry" in capsys.readouterr().out

    def test_no_baseline_flag_ignores_file(self, tmp_path, monkeypatch):
        write(tmp_path, "src/mod.py", _BAD_RNG)
        Baseline(
            entries=[
                BaselineEntry(
                    rule="RNG001",
                    path="src/mod.py",
                    line_text="np.random.shuffle(x)",
                    reason="fixture",
                )
            ]
        ).save(tmp_path / "reprolint-baseline.json")
        monkeypatch.chdir(tmp_path)
        assert main(["src", "--no-baseline"]) == 1

    def test_update_baseline_round_trip(self, tmp_path, monkeypatch, capsys):
        write(tmp_path, "src/mod.py", _BAD_RNG)
        monkeypatch.chdir(tmp_path)
        assert main(["src", "--update-baseline"]) == 0
        payload = json.loads((tmp_path / "reprolint-baseline.json").read_text())
        assert len(payload["entries"]) == 1
        entry = payload["entries"][0]
        assert entry["rule"] == "RNG001"
        assert entry["path"] == "src/mod.py"
        assert entry["reason"]  # placeholder forces a human to justify it
        capsys.readouterr()
        assert main(["src"]) == 0

    def test_explicit_baseline_path(self, tmp_path, monkeypatch):
        write(tmp_path, "src/mod.py", _BAD_RNG)
        custom = tmp_path / "custom-baseline.json"
        monkeypatch.chdir(tmp_path)
        assert main(["src", "--update-baseline", "--baseline", str(custom)]) == 0
        assert custom.exists()
        assert main(["src", "--baseline", str(custom)]) == 0
