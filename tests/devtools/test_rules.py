"""Fixture-driven tests for every reprolint rule.

Each test writes small good/bad snippets into a temp directory and runs the
analyzer over it, asserting the rule fires exactly where it should. Snippet
modules are deliberately *not* named ``test_*.py`` so the analyzer treats
them as production code (several rules skip test files).
"""

from pathlib import Path

import pytest

from repro.devtools import analyze_paths

pytestmark = pytest.mark.filterwarnings("ignore::DeprecationWarning")


def lint_source(tmp_path: Path, source: str, rel: str = "mod.py"):
    """Write one snippet and return ``(findings, suppressed)`` for it."""
    target = tmp_path / rel
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return analyze_paths([tmp_path], root=tmp_path)


def codes(findings) -> list[str]:
    return [finding.rule for finding in findings]


# ----------------------------------------------------------------------
# RNG001
# ----------------------------------------------------------------------


class TestRng001:
    def test_np_random_module_call_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import numpy as np\n"
            "def f(x):\n"
            "    np.random.shuffle(x)\n",
        )
        assert codes(findings) == ["RNG001"]
        assert "np.random.shuffle" in findings[0].message

    def test_stdlib_random_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import random\n"
            "def f():\n"
            "    return random.random()\n",
        )
        assert codes(findings) == ["RNG001"]

    def test_from_import_alias_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from numpy.random import normal as gauss\n"
            "def f():\n"
            "    return gauss(0.0, 1.0)\n",
        )
        assert codes(findings) == ["RNG001"]

    def test_unseeded_default_rng_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import numpy as np\n"
            "gen = np.random.default_rng()\n",
        )
        assert codes(findings) == ["RNG001"]

    def test_seeded_default_rng_ok(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import numpy as np\n"
            "gen = np.random.default_rng(42)\n",
        )
        assert findings == []

    def test_generator_draws_ok(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import numpy as np\n"
            "def f(rng):\n"
            "    gen = np.random.default_rng(rng)\n"
            "    return gen.random(10)\n",
        )
        assert findings == []

    def test_rng_module_is_exempt(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import numpy as np\n"
            "def as_generator(rng=None):\n"
            "    return np.random.default_rng()\n",
            rel="utils/rng.py",
        )
        assert findings == []

    def test_applies_to_test_files_too(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import numpy as np\n"
            "def test_x():\n"
            "    np.random.seed(0)\n",
            rel="test_mod.py",
        )
        assert codes(findings) == ["RNG001"]


# ----------------------------------------------------------------------
# PRIV001
# ----------------------------------------------------------------------


class TestPriv001:
    def test_raw_values_into_sink_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def send(values):\n"
            "    return encode_batch(values)\n",
        )
        assert codes(findings) == ["PRIV001"]

    def test_alias_taint_tracked(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def send(values):\n"
            "    payload = values * 2\n"
            "    return encode_batch_v2('r', payload)\n",
        )
        assert codes(findings) == ["PRIV001"]

    def test_privatize_sanitizes(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def send(mech, values):\n"
            "    reports = mech.privatize(values)\n"
            "    return encode_batch(reports)\n",
        )
        assert findings == []

    def test_inline_privatize_sanitizes(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def send(mech, values):\n"
            "    return encode_frame('r', mech.privatize(values), 'float')\n",
        )
        assert findings == []

    def test_skips_test_files(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def send(values):\n"
            "    return encode_batch(values)\n",
            rel="test_send.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# PRIV002
# ----------------------------------------------------------------------


class TestPriv002:
    def test_unvalidated_constructor_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "class Mechanism:\n"
            "    def __init__(self, epsilon):\n"
            "        self.epsilon = epsilon\n",
        )
        assert codes(findings) == ["PRIV002"]

    def test_check_epsilon_satisfies(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from repro.utils.validation import check_epsilon\n"
            "class Mechanism:\n"
            "    def __init__(self, epsilon):\n"
            "        self.epsilon = check_epsilon(epsilon)\n",
        )
        assert findings == []

    def test_delegation_satisfies(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "class Wrapper:\n"
            "    def __init__(self, epsilon):\n"
            "        self.inner = Inner(epsilon)\n",
        )
        assert findings == []

    def test_explicit_guard_satisfies(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def helper(eps):\n"
            "    if eps <= 0:\n"
            "        raise ValueError('eps')\n"
            "    return eps\n",
        )
        assert findings == []

    def test_private_helpers_exempt(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def _internal(epsilon):\n"
            "    return epsilon * 2\n",
        )
        assert findings == []


# ----------------------------------------------------------------------
# NUM001
# ----------------------------------------------------------------------


class TestNum001:
    def test_float_equality_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def f(ratio):\n"
            "    return ratio == 1.0\n",
        )
        assert codes(findings) == ["NUM001"]

    def test_integer_equality_ok(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def f(n):\n"
            "    return n == 1\n",
        )
        assert findings == []

    def test_unguarded_np_log_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import numpy as np\n"
            "def f(probs):\n"
            "    return np.log(probs)\n",
        )
        assert codes(findings) == ["NUM001"]

    def test_floored_np_log_ok(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import numpy as np\n"
            "def f(probs):\n"
            "    return np.log(np.maximum(probs, 1e-300))\n",
        )
        assert findings == []

    def test_where_masked_np_log_ok(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import numpy as np\n"
            "def f(p, out, mask):\n"
            "    return np.log(p, out=out, where=mask)\n",
        )
        assert findings == []

    def test_unguarded_count_division_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def f(total, n):\n"
            "    return total / n\n",
        )
        assert codes(findings) == ["NUM001"]

    def test_guarded_count_division_ok(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def f(total, n):\n"
            "    if n < 1:\n"
            "        raise ValueError('empty batch')\n"
            "    return total / n\n",
        )
        assert findings == []

    def test_skips_test_files(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def f(ratio):\n"
            "    return ratio == 1.0\n",
            rel="test_ratio.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# NUM002
# ----------------------------------------------------------------------


class TestNum002:
    def test_dense_call_in_solver_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def solve(operator, counts):\n"
            "    m = operator.to_dense()\n"
            "    return m.sum(axis=0)\n",
            rel="engine/solver.py",
        )
        assert codes(findings) == ["NUM002"]

    def test_to_dense_implementation_allowed(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "class Op:\n"
            "    def to_dense(self):\n"
            "        return self.inner.to_dense()\n",
            rel="engine/operators.py",
        )
        assert findings == []

    def test_other_modules_unconstrained(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def build(mechanism, d):\n"
            "    return mechanism.transition_matrix(d)\n",
            rel="core/pipeline.py",
        )
        assert findings == []


# ----------------------------------------------------------------------
# NUM003
# ----------------------------------------------------------------------


class TestNum003:
    def test_bare_matmul_in_solver_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def product(m, v):\n"
            "    return m @ v\n",
            rel="engine/solver.py",
        )
        assert codes(findings) == ["NUM003"]
        assert "ComputeBackend" in findings[0].message

    def test_np_dot_and_matmul_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import numpy as np\n"
            "def products(m, v):\n"
            "    a = np.dot(m, v)\n"
            "    b = np.matmul(m.T, v)\n"
            "    return a, b\n",
            rel="engine/operators.py",
        )
        assert codes(findings) == ["NUM003", "NUM003"]

    def test_array_dot_method_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def product(m, v):\n"
            "    return m.dot(v)\n",
            rel="engine/solver.py",
        )
        assert codes(findings) == ["NUM003"]

    def test_backend_seam_calls_ok(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def product(bk, m, v, y):\n"
            "    return bk.matmul(m, v) + bk.rmatmul(m, y)\n",
            rel="engine/solver.py",
        )
        assert findings == []

    def test_dense_scopes_allowed(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "class Op:\n"
            "    def to_dense(self):\n"
            "        return self.left @ self.right\n",
            rel="engine/operators.py",
        )
        assert findings == []

    def test_other_modules_unconstrained(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def project(m, v):\n"
            "    return m @ v\n",
            rel="core/hh.py",
        )
        assert findings == []

    def test_inline_suppression_honored(self, tmp_path):
        findings, suppressed = lint_source(
            tmp_path,
            "def product(m, v):\n"
            "    return m @ v  # reprolint: disable=NUM003 -- bench baseline\n",
            rel="engine/solver.py",
        )
        assert findings == []
        assert len(suppressed) == 1


# ----------------------------------------------------------------------
# REG001
# ----------------------------------------------------------------------

_REGISTRY_PRELUDE = (
    "class Estimator:\n"
    "    pass\n"
    "\n"
    "def register_estimator(name, factory, **kwargs):\n"
    "    pass\n"
    "\n"
)


class TestReg001:
    def test_unregistered_subclass_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            _REGISTRY_PRELUDE
            + "class WiredEstimator(Estimator):\n"
            "    name = 'wired'\n"
            "    kind = 'distribution'\n"
            "    wire_codec = 'float'\n"
            "    n_reports = None\n"
            "\n"
            "register_estimator('wired', WiredEstimator)\n"
            "\n"
            "class OrphanEstimator(Estimator):\n"
            "    name = 'orphan'\n"
            "    kind = 'distribution'\n"
            "    wire_codec = 'float'\n"
            "    n_reports = None\n",
        )
        assert codes(findings) == ["REG001"]
        assert "not wired into any register_estimator" in findings[0].message

    def test_registered_subclass_ok(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            _REGISTRY_PRELUDE
            + "class WiredEstimator(Estimator):\n"
            "    name = 'wired'\n"
            "    kind = 'distribution'\n"
            "    wire_codec = 'float'\n"
            "    n_reports = None\n"
            "\n"
            "register_estimator('wired', WiredEstimator)\n",
        )
        assert findings == []

    def test_missing_capabilities_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            _REGISTRY_PRELUDE
            + "class BareEstimator(Estimator):\n"
            "    name = 'bare'\n"
            "    kind = 'distribution'\n"
            "\n"
            "register_estimator('bare', BareEstimator)\n",
        )
        assert codes(findings) == ["REG001"]
        assert "wire_codec" in findings[0].message
        assert "n_reports" in findings[0].message

    def test_capabilities_inherited_from_family_base(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            _REGISTRY_PRELUDE
            + "class WaveBase(Estimator):\n"
            "    wire_codec = 'float'\n"
            "    def n_reports(self, reports):\n"
            "        return 0\n"
            "\n"
            "class LeafEstimator(WaveBase):\n"
            "    name = 'leaf'\n"
            "    kind = 'distribution'\n"
            "\n"
            "register_estimator('leaf', LeafEstimator)\n",
        )
        assert findings == []

    def test_abstract_and_private_classes_exempt(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import abc\n" + _REGISTRY_PRELUDE
            + "class FamilyBase(Estimator):\n"
            "    @abc.abstractmethod\n"
            "    def estimate(self):\n"
            "        ...\n"
            "\n"
            "class _Hidden(Estimator):\n"
            "    pass\n",
        )
        assert findings == []


# ----------------------------------------------------------------------
# suppression plumbing
# ----------------------------------------------------------------------


class TestSuppression:
    def test_inline_disable_suppresses(self, tmp_path):
        findings, suppressed = lint_source(
            tmp_path,
            "def f(ratio):\n"
            "    return ratio == 1.0  # reprolint: disable=NUM001 -- exact flag\n",
        )
        assert findings == []
        assert codes(suppressed) == ["NUM001"]

    def test_disable_is_rule_specific(self, tmp_path):
        findings, suppressed = lint_source(
            tmp_path,
            "def f(ratio):\n"
            "    return ratio == 1.0  # reprolint: disable=RNG001\n",
        )
        assert codes(findings) == ["NUM001"]
        assert suppressed == []

    def test_multiple_codes_on_one_line(self, tmp_path):
        findings, suppressed = lint_source(
            tmp_path,
            "import numpy as np\n"
            "def f(ratio, probs):\n"
            "    return (ratio == 1.0) and np.log(probs).any()"
            "  # reprolint: disable=NUM001, RNG001\n",
        )
        assert findings == []
        assert len(suppressed) == 2

    def test_syntax_error_becomes_parse_finding(self, tmp_path):
        findings, _ = lint_source(tmp_path, "def broken(:\n")
        assert codes(findings) == ["PARSE"]


# ----------------------------------------------------------------------
# SVC001 — async service handlers must not block the event loop
# ----------------------------------------------------------------------

ASYNC_SLEEP_BAD = (
    "import time\n"
    "async def handle(request):\n"
    "    time.sleep(0.1)\n"
    "    return request\n"
)

ASYNC_SOLVE_BAD = (
    "async def handle(collector, round_id):\n"
    "    return collector.estimate(round_id)\n"
)


class TestAsyncBlockingRule:
    def test_time_sleep_in_async_handler_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path, ASYNC_SLEEP_BAD, rel="service/handlers.py"
        )
        assert codes(findings) == ["SVC001"]
        assert "asyncio.sleep" in findings[0].message

    def test_asyncio_sleep_is_fine(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import asyncio\n"
            "async def handle(request):\n"
            "    await asyncio.sleep(0.1)\n",
            rel="service/handlers.py",
        )
        assert findings == []

    def test_direct_estimate_call_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path, ASYNC_SOLVE_BAD, rel="service/handlers.py"
        )
        assert codes(findings) == ["SVC001"]
        assert "run_in_executor" in findings[0].message

    def test_estimate_rounds_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "from repro.protocol import estimate_rounds\n"
            "async def handle(servers):\n"
            "    return estimate_rounds(servers)\n",
            rel="service/handlers.py",
        )
        assert codes(findings) == ["SVC001"]

    def test_offloaded_solve_is_exempt(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import asyncio\n"
            "async def handle(pool, collector, round_id):\n"
            "    loop = asyncio.get_running_loop()\n"
            "    return await loop.run_in_executor(\n"
            "        pool, lambda: collector.estimate(round_id)\n"
            "    )\n",
            rel="service/handlers.py",
        )
        assert findings == []

    def test_to_thread_offload_is_exempt(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import asyncio\n"
            "async def handle(collector, round_id):\n"
            "    return await asyncio.to_thread(collector.estimate, round_id)\n",
            rel="service/handlers.py",
        )
        assert findings == []

    def test_sync_socket_use_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import socket\n"
            "async def probe(host, port):\n"
            "    return socket.create_connection((host, port))\n",
            rel="service/handlers.py",
        )
        assert codes(findings) == ["SVC001"]
        assert "open_connection" in findings[0].message

    def test_nested_sync_helper_is_exempt(self, tmp_path):
        """A sync def inside the coroutine is executor fodder, not loop code."""
        findings, _ = lint_source(
            tmp_path,
            "import time\n"
            "async def handle(pool, loop):\n"
            "    def solve():\n"
            "        time.sleep(0.01)\n"
            "        return 1\n"
            "    return await loop.run_in_executor(pool, solve)\n",
            rel="service/handlers.py",
        )
        assert findings == []

    def test_sync_functions_not_checked(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import time\n"
            "def drain():\n"
            "    time.sleep(0.1)\n",
            rel="service/core.py",
        )
        assert findings == []

    def test_non_service_modules_not_checked(self, tmp_path):
        findings, _ = lint_source(tmp_path, ASYNC_SLEEP_BAD, rel="engine/jobs.py")
        assert findings == []

    def test_service_test_modules_not_checked(self, tmp_path):
        findings, _ = lint_source(
            tmp_path, ASYNC_SOLVE_BAD, rel="service/test_handlers.py"
        )
        assert findings == []


# ----------------------------------------------------------------------
# STATE001
# ----------------------------------------------------------------------

STATE_SUB_BAD = (
    "def advance(current, evicted):\n"
    "    return current.to_state()[\"counts\"] - evicted.to_state()[\"counts\"]\n"
)

STATE_AUG_BAD = (
    "def decay(window_state, gamma):\n"
    "    window_state *= gamma\n"
    "    return window_state\n"
)


class TestState001:
    def test_subtraction_of_state_payloads_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, STATE_SUB_BAD, rel="protocol/agg.py")
        assert codes(findings) == ["STATE001"]
        assert "subtract_state" in findings[0].message

    def test_scaling_state_variable_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def forget(state, gamma):\n"
            "    return state[\"n\"] * gamma\n",
            rel="service/core.py",
        )
        assert codes(findings) == ["STATE001"]

    def test_augmented_scaling_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, STATE_AUG_BAD, rel="protocol/agg.py")
        assert codes(findings) == ["STATE001"]
        assert "'*'" in findings[0].message

    def test_division_of_state_call_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def norm(est):\n"
            "    return est._state()[\"counts\"] / est._state()[\"n\"]\n",
            rel="core/pipeline.py",
        )
        assert codes(findings) == ["STATE001"]

    def test_addition_is_not_flagged(self, tmp_path):
        """Merge-shaped addition is what ``merge()`` already sanctions."""
        findings, _ = lint_source(
            tmp_path,
            "def fold(state, other_state):\n"
            "    return state + other_state\n",
            rel="protocol/agg.py",
        )
        assert findings == []

    def test_api_modules_are_exempt(self, tmp_path):
        findings, _ = lint_source(tmp_path, STATE_SUB_BAD, rel="api/arithmetic.py")
        assert findings == []

    def test_streaming_modules_are_exempt(self, tmp_path):
        findings, _ = lint_source(tmp_path, STATE_AUG_BAD, rel="streaming/window.py")
        assert findings == []

    def test_non_state_names_not_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def bill(estate, rate):\n"
            "    statement = estate * rate\n"
            "    return statement - 1.0\n",
            rel="service/core.py",
        )
        assert findings == []

    def test_test_modules_not_checked(self, tmp_path):
        findings, _ = lint_source(
            tmp_path, STATE_SUB_BAD, rel="protocol/test_agg.py"
        )
        assert findings == []


# ----------------------------------------------------------------------
# FT001
# ----------------------------------------------------------------------

SWALLOW_BAD = (
    "def drain(queue):\n"
    "    while True:\n"
    "        block = queue.get()\n"
    "        try:\n"
    "            fold(block)\n"
    "        except Exception:\n"
    "            pass\n"
)


class TestFt001:
    def test_swallowed_drain_loop_flagged(self, tmp_path):
        findings, _ = lint_source(tmp_path, SWALLOW_BAD, rel="service/core.py")
        assert codes(findings) == ["FT001"]
        assert "swallows" in findings[0].message

    def test_bare_except_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except:\n"
            "        return None\n",
            rel="service/http.py",
        )
        assert codes(findings) == ["FT001"]

    def test_tuple_containing_broad_flagged(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except (ValueError, Exception):\n"
            "        return None\n",
            rel="service/core.py",
        )
        assert codes(findings) == ["FT001"]

    def test_error_counter_update_ok(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "class Shard:\n"
            "    def drain(self, queue):\n"
            "        try:\n"
            "            fold(queue.get())\n"
            "        except Exception:\n"
            "            self._counters.errors += 1\n",
            rel="service/core.py",
        )
        assert findings == []

    def test_bound_exception_recorded_ok(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "class Shard:\n"
            "    def drain(self, queue):\n"
            "        try:\n"
            "            fold(queue.get())\n"
            "        except Exception as exc:\n"
            "            self.last = repr(exc)\n",
            rel="service/core.py",
        )
        assert findings == []

    def test_reraise_ok(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "def f():\n"
            "    try:\n"
            "        work()\n"
            "    except Exception:\n"
            "        cleanup()\n"
            "        raise\n",
            rel="service/core.py",
        )
        assert findings == []

    def test_narrow_handler_ok(self, tmp_path):
        findings, _ = lint_source(
            tmp_path,
            "import queue\n"
            "def f(q):\n"
            "    try:\n"
            "        q.put_nowait(None)\n"
            "    except queue.Full:\n"
            "        pass\n",
            rel="service/core.py",
        )
        assert findings == []

    def test_non_service_modules_not_checked(self, tmp_path):
        findings, _ = lint_source(tmp_path, SWALLOW_BAD, rel="engine/solve.py")
        assert findings == []

    def test_test_modules_not_checked(self, tmp_path):
        findings, _ = lint_source(
            tmp_path, SWALLOW_BAD, rel="service/test_core.py"
        )
        assert findings == []
