"""Meta-tests: the shipped tree stays lint-clean, and injections fail.

These are the acceptance contract of the linter itself: ``src`` and
``tests`` carry zero non-baselined findings, and deliberately introducing
either of the two canonical violations (a global ``np.random`` call, an
unregistered ``Estimator`` family) makes the analysis fail.
"""

import shutil
from pathlib import Path

from repro.devtools import Baseline, analyze_paths
from repro.devtools.baseline import DEFAULT_BASELINE
from repro.devtools.lint import main

REPO_ROOT = Path(__file__).resolve().parents[2]


def repo_findings(root: Path):
    """Non-baselined findings for the repo tree rooted at ``root``."""
    findings, _ = analyze_paths([root / "src", root / "tests"], root=root)
    baseline = Baseline.load(root / DEFAULT_BASELINE)
    new, _, stale = baseline.split(findings)
    return new, stale


class TestShippedTreeIsClean:
    def test_src_and_tests_have_no_new_findings(self):
        new, stale = repo_findings(REPO_ROOT)
        assert new == [], "\n".join(f.render() for f in new)
        assert stale == [], "stale baseline entries should be removed"

    def test_baseline_stays_small_and_justified(self):
        baseline = Baseline.load(REPO_ROOT / DEFAULT_BASELINE)
        assert len(baseline.entries) <= 5
        for entry in baseline.entries:
            assert entry.reason.strip(), f"baseline entry without reason: {entry}"

    def test_cli_exits_zero_on_repo(self, monkeypatch, capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert main(["src", "tests"]) == 0
        capsys.readouterr()


class TestInjections:
    """Copy a small slice of the tree, inject a violation, expect failure."""

    def _copy_api(self, tmp_path: Path) -> Path:
        target = tmp_path / "src" / "repro" / "api"
        target.parent.mkdir(parents=True)
        shutil.copytree(REPO_ROOT / "src" / "repro" / "api", target)
        return target

    def test_global_shuffle_injection_fails(self, tmp_path, monkeypatch, capsys):
        api = self._copy_api(tmp_path)
        (api / "shuffled.py").write_text(
            "import numpy as np\n\n"
            "def resample(reports):\n"
            "    np.random.shuffle(reports)\n"
            "    return reports\n",
            encoding="utf-8",
        )
        monkeypatch.chdir(tmp_path)
        assert main(["src"]) == 1
        assert "RNG001" in capsys.readouterr().out

    def test_unregistered_estimator_injection_fails(self, tmp_path, monkeypatch, capsys):
        api = self._copy_api(tmp_path)
        (api / "bogus.py").write_text(
            "from repro.api.base import Estimator\n\n\n"
            "class BogusEstimator(Estimator):\n"
            "    name = 'bogus'\n"
            "    kind = 'frequency'\n",
            encoding="utf-8",
        )
        monkeypatch.chdir(tmp_path)
        assert main(["src"]) == 1
        out = capsys.readouterr().out
        assert "REG001" in out
        assert "BogusEstimator" in out

    def test_raw_value_encode_injection_fails(self, tmp_path, monkeypatch, capsys):
        api = self._copy_api(tmp_path)
        (api / "leaky.py").write_text(
            "from repro.protocol.messages import encode_batch\n\n\n"
            "def ship(values):\n"
            "    return encode_batch(values)\n",
            encoding="utf-8",
        )
        monkeypatch.chdir(tmp_path)
        assert main(["src"]) == 1
        assert "PRIV001" in capsys.readouterr().out
