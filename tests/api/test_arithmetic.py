"""Sanctioned state arithmetic: subtract/scale in payload and estimator space."""

import numpy as np
import pytest

from repro.api import (
    add_payload,
    list_estimators,
    make_estimator,
    scale_payload,
    scale_state,
    subtract_payload,
    subtract_state,
    supports_state_arithmetic,
)
from repro.utils.rng import as_generator


#: Families whose clients report categorical indices rather than reals.
_CATEGORICAL = {"grr", "olh", "hrr"}


def _fitted(name, seed, n=400, **kwargs):
    est = make_estimator(name, 1.0, 64, **kwargs)
    gen = as_generator(seed)
    if name in _CATEGORICAL:
        values = gen.integers(0, 64, size=n)
    else:
        values = gen.random(n)
    est.partial_fit(values, rng=gen)
    return est


class TestPayloadArithmetic:
    def test_subtract_then_add_roundtrips(self):
        a = {"counts": [3.0, 5.0], "n": 8}
        b = {"counts": [1.0, 2.0], "n": 3}
        assert add_payload(subtract_payload(a, b), b) == a

    def test_nested_lists_recurse(self):
        a = {"levels": [[2.0, 2.0], [4.0]]}
        b = {"levels": [[1.0, 0.5], [1.0]]}
        assert subtract_payload(a, b) == {"levels": [[1.0, 1.5], [3.0]]}

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError, match="shape"):
            subtract_payload({"c": [1.0, 2.0]}, {"c": [1.0]})

    def test_key_mismatch_rejected(self):
        with pytest.raises(ValueError, match="keys"):
            subtract_payload({"a": 1.0}, {"b": 1.0})

    def test_string_leaves_must_match(self):
        a = {"codec": "v2", "n": 4}
        assert subtract_payload(a, {"codec": "v2", "n": 1})["codec"] == "v2"
        with pytest.raises(ValueError, match="non-numeric"):
            subtract_payload(a, {"codec": "v1", "n": 1})

    def test_bool_leaves_are_structure_not_counts(self):
        a = {"flag": True, "n": 4}
        assert subtract_payload(a, {"flag": True, "n": 1}) == {"flag": True, "n": 3}
        with pytest.raises(ValueError, match="non-numeric"):
            subtract_payload(a, {"flag": False, "n": 1})
        assert scale_payload({"flag": True}, 0.5) == {"flag": True}

    def test_scale_keeps_integral_ints_exact(self):
        assert scale_payload({"n": 10}, 1.0) == {"n": 10}
        assert isinstance(scale_payload({"n": 10}, 1.0)["n"], int)
        assert scale_payload({"n": 10}, 0.5) == {"n": 5}
        scaled = scale_payload({"n": 10}, 0.33)["n"]
        assert scaled == pytest.approx(3.3)
        assert isinstance(scaled, float)

    def test_scale_is_deep_copy_at_gamma_one(self):
        payload = {"counts": [1.0, 2.0]}
        copy = scale_payload(payload, 1.0)
        copy["counts"][0] = 99.0
        assert payload["counts"][0] == 1.0


class TestSubtractState:
    @pytest.mark.parametrize("name", ["sw-ems", "sw-em", "sw-discrete-ems"])
    def test_merge_then_subtract_is_bit_identical(self, name):
        """Bucketized-count states: (a + b) - b is exact below 2^53."""
        base = _fitted(name, seed=0)
        other = _fitted(name, seed=1)
        before = base.to_state()
        base.merge(other)
        subtract_state(base, other)
        assert base.to_state() == before

    @pytest.mark.parametrize("name", ["grr", "olh", "hh", "sr"])
    def test_float_weighted_states_roundtrip_approximately(self, name):
        """Debiased-weight states are floats; close, not bit-exact."""
        base = _fitted(name, seed=0)
        other = _fitted(name, seed=1)
        before = base._state()
        base.merge(other)
        subtract_state(base, other)
        after = base._state()

        def check(a, b):
            if isinstance(a, float):
                assert a == pytest.approx(b)
            elif isinstance(a, list):
                assert len(a) == len(b)
                for x, y in zip(a, b):
                    check(x, y)
            elif isinstance(a, dict):
                assert a.keys() == b.keys()
                for key in a:
                    check(a[key], b[key])
            else:
                assert a == b

        check(after, before)

    def test_incompatible_types_rejected(self):
        with pytest.raises(TypeError, match="cannot combine"):
            subtract_state(_fitted("sw-ems", 0), _fitted("grr", 0))

    def test_incompatible_params_rejected(self):
        a = make_estimator("sw-ems", 1.0, 64)
        b = make_estimator("sw-ems", 2.0, 64)
        with pytest.raises(ValueError, match="parameters"):
            subtract_state(a, b)

    def test_opt_out_estimator_rejected(self):
        est = _fitted("sw-ems", 0)
        est.state_arithmetic = False
        with pytest.raises(TypeError, match="state_arithmetic"):
            subtract_state(est, _fitted("sw-ems", 1))
        with pytest.raises(TypeError, match="state_arithmetic"):
            scale_state(est, 0.5)
        assert not supports_state_arithmetic(est)


class TestScaleState:
    def test_scaling_counts(self):
        est = _fitted("sw-ems", 0, n=1000)
        total = est._counts.sum()
        scale_state(est, 0.5)
        assert est._counts.sum() == pytest.approx(0.5 * total)

    def test_gamma_validation(self):
        est = _fitted("sw-ems", 0)
        for gamma in (-0.1, float("nan"), float("inf")):
            with pytest.raises(ValueError, match="gamma"):
                scale_state(est, gamma)

    def test_scale_by_one_is_identity(self):
        est = _fitted("sw-ems", 0)
        before = est.to_state()
        scale_state(est, 1.0)
        assert est.to_state() == before


class TestCapabilityFlag:
    def test_all_builtin_families_declare_arithmetic(self):
        specs = list_estimators()
        assert specs
        assert all(spec.state_arithmetic for spec in specs)

    def test_registry_filter(self):
        assert list_estimators(state_arithmetic=True)
        assert list_estimators(state_arithmetic=False) == []

    def test_instances_report_capability(self):
        assert supports_state_arithmetic(make_estimator("sw-ems", 1.0, 64))
        assert not supports_state_arithmetic(object())
