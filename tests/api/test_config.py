"""Tests for the centralized EM configuration (repro.api.EMConfig)."""

import numpy as np
import pytest

from repro.api import EMConfig
from repro.core.pipeline import SWEstimator
from repro.protocol.server import SWServer


class TestDefaultTolerance:
    def test_ems_fixed(self):
        assert EMConfig.default_tolerance("ems", 4.0) == 1e-3

    def test_em_scales_with_epsilon(self):
        assert EMConfig.default_tolerance("em", 2.0) == pytest.approx(
            1e-3 * np.exp(2.0)
        )

    @pytest.mark.parametrize("postprocess", ["ems", "em"])
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 4.0])
    def test_always_plain_float(self, postprocess, epsilon):
        """The paper rule must yield a plain float, never a NumPy scalar."""
        tol = EMConfig.default_tolerance(postprocess, epsilon)
        assert type(tol) is float

    def test_rejects_unknown_postprocess(self):
        with pytest.raises(ValueError, match="postprocess"):
            EMConfig.default_tolerance("norm-sub", 1.0)


class TestToleranceConsistencyAcrossSurfaces:
    """Regression: pipeline (math.exp) and server (np.exp) used to drift."""

    @pytest.mark.parametrize("postprocess", ["ems", "em"])
    @pytest.mark.parametrize("epsilon", [0.25, 1.0, 3.0])
    def test_server_and_estimator_identical(self, postprocess, epsilon):
        est = SWEstimator(epsilon, d=32, postprocess=postprocess)
        server = SWServer("r", epsilon, d=32, postprocess=postprocess)
        assert est.tol == server.tol
        assert type(est.tol) is float
        assert type(server.tol) is float
        assert not isinstance(server.tol, np.floating)

    def test_explicit_tol_respected_on_both(self):
        assert SWEstimator(1.0, d=32, tol=0.5).tol == 0.5
        assert SWServer("r", 1.0, d=32, tol=0.5).tol == 0.5


class TestEMConfigValidation:
    def test_rejects_bad_postprocess(self):
        with pytest.raises(ValueError, match="postprocess"):
            EMConfig(postprocess="magic")

    def test_rejects_bad_tol(self):
        with pytest.raises(ValueError, match="tol"):
            EMConfig(tol=-1.0)

    def test_rejects_bad_max_iter(self):
        with pytest.raises(ValueError, match="max_iter"):
            EMConfig(max_iter=0)

    def test_rejects_bad_smoothing_order(self):
        with pytest.raises(ValueError, match="smoothing_order"):
            EMConfig(smoothing_order=0)

    def test_kernel_only_for_ems(self):
        assert EMConfig(postprocess="em").kernel() is None
        kernel = EMConfig(postprocess="ems", smoothing_order=2).kernel()
        np.testing.assert_allclose(kernel.sum(), 1.0)

    def test_dict_round_trip(self):
        config = EMConfig(postprocess="em", tol=0.2, max_iter=50)
        assert EMConfig(**config.to_dict()) == config


class TestConfigConsumers:
    def test_estimator_accepts_config_object(self, beta_values, rng):
        config = EMConfig(postprocess="em", max_iter=20)
        est = SWEstimator(1.0, d=32, config=config)
        assert est.postprocess == "em"
        assert est.max_iter == 20
        assert est.config is config
        out = est.fit(beta_values[:2000], rng=rng)
        assert out.sum() == pytest.approx(1.0)

    def test_server_shares_config_type(self):
        config = EMConfig(postprocess="em", tol=0.7)
        server = SWServer("r", 1.0, d=32, config=config)
        assert server.config is config
        assert server.tol == 0.7

    def test_cfo_em_reconstruction(self, beta_values, rng):
        """CFOBinning consumes EMConfig: EM over GRR chunk reports."""
        from repro.binning.cfo_binning import CFOBinning
        from repro.freq_oracle.grr import GRR

        est = CFOBinning(1.0, d=64, bins=16, em=EMConfig())
        assert isinstance(est.oracle, GRR)
        out = est.fit(beta_values[:5000], rng=rng)
        assert out.shape == (64,)
        assert (out >= 0).all()
        assert out.sum() == pytest.approx(1.0)
        assert est.result_ is not None

    def test_cfo_em_rejects_olh(self):
        from repro.binning.cfo_binning import CFOBinning

        with pytest.raises(ValueError, match="OLH"):
            CFOBinning(1.0, d=64, bins=16, oracle="olh", em=EMConfig())

    def test_cfo_transition_matrix_columns_sum_to_one(self):
        from repro.binning.cfo_binning import CFOBinning

        est = CFOBinning(1.0, d=64, bins=16, em=EMConfig())
        np.testing.assert_allclose(est.transition_matrix.sum(axis=0), 1.0)
