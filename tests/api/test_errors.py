"""Empty-state behavior: estimate() before ingest raises EmptyAggregateError."""

import numpy as np
import pytest

from repro.api import EMConfig, EmptyAggregateError
from repro.binning.cfo_binning import CFOBinning
from repro.core.pipeline import DiscreteSWEstimator, SWEstimator
from repro.freq_oracle.grr import GRR
from repro.hierarchy.admm import HHADMM
from repro.hierarchy.haar import HaarHRR
from repro.hierarchy.hh import HierarchicalHistogram
from repro.mean.scalar import ScalarMeanEstimator
from repro.multidim.marginals import MultiAttributeSW
from repro.protocol.server import SWServer

_EMPTY_ESTIMATORS = [
    pytest.param(lambda: SWEstimator(1.0, d=16), id="sw"),
    pytest.param(lambda: DiscreteSWEstimator(1.0, d=16), id="sw-discrete"),
    pytest.param(lambda: CFOBinning(1.0, d=32, bins=16), id="cfo"),
    pytest.param(
        lambda: CFOBinning(1.0, d=32, bins=16, em=EMConfig()), id="cfo-em"
    ),
    pytest.param(lambda: HierarchicalHistogram(1.0, d=16), id="hh"),
    pytest.param(lambda: HHADMM(1.0, d=16), id="hh-admm"),
    pytest.param(lambda: HaarHRR(1.0, d=16), id="haar-hrr"),
    pytest.param(lambda: GRR(1.0, 8), id="grr"),
    pytest.param(lambda: ScalarMeanEstimator(1.0, "pm"), id="pm"),
    pytest.param(lambda: MultiAttributeSW(1.0, n_attributes=2, d=16), id="multi"),
]


@pytest.mark.parametrize("factory", _EMPTY_ESTIMATORS)
def test_estimate_on_empty_state_raises_empty_aggregate_error(factory):
    with pytest.raises(EmptyAggregateError, match="no reports ingested"):
        factory().estimate()


@pytest.mark.parametrize("factory", _EMPTY_ESTIMATORS)
def test_empty_aggregate_error_is_a_runtime_error(factory):
    # Backwards compatibility: callers catching RuntimeError keep working.
    with pytest.raises(RuntimeError):
        factory().estimate()


def test_server_estimate_on_empty_round():
    server = SWServer("r1", epsilon=1.0, d=16)
    with pytest.raises(EmptyAggregateError, match="no reports ingested"):
        server.estimate()


def test_error_raised_before_the_solver_is_reached():
    # The guard must fire at the estimator boundary, not surface the EM
    # solver's "counts must contain at least one report" ValueError.
    est = SWEstimator(1.0, d=16)
    with pytest.raises(EmptyAggregateError):
        est.estimate()
    est.partial_fit(np.random.default_rng(0).random(100))
    est.estimate()  # with reports ingested it reconstructs fine
    est.reset()
    with pytest.raises(EmptyAggregateError):
        est.estimate()


def test_exported_at_top_level():
    import repro

    assert repro.EmptyAggregateError is EmptyAggregateError
