"""Tests for the central estimator registry (repro.api.registry)."""

import numpy as np
import pytest

from repro.api import (
    Estimator,
    get_spec,
    list_estimators,
    make_estimator,
    register_estimator,
)
from repro.api.registry import _REGISTRY
from repro.core.pipeline import estimate_distribution
from repro.experiments.methods import METHOD_REGISTRY

#: Every registered name must build an estimator that completes a full
#: fit on a small synthetic dataset at this granularity (64 = 4^3 = 2^6,
#: compatible with every family's domain constraint).
D = 64


@pytest.fixture(scope="module")
def unit_values():
    return np.random.default_rng(9).beta(5.0, 2.0, 3000)


class TestRegistryContents:
    def test_every_family_registered(self):
        names = {spec.name for spec in list_estimators()}
        assert {
            "sw-ems",
            "sw-em",
            "sw-discrete-ems",
            "sw-discrete-em",
            "cfo",
            "cfo-16",
            "cfo-32",
            "cfo-64",
            "hh",
            "haar-hrr",
            "hh-admm",
            "sr",
            "pm",
            "grr",
            "olh",
            "hrr",
        } <= names

    def test_kind_filter(self):
        kinds = {s.kind for s in list_estimators(kind="distribution")}
        assert kinds == {"distribution"}
        assert {s.name for s in list_estimators(kind="scalar")} == {"sr", "pm"}

    def test_metric_filter(self):
        """The planner's capability query: who can answer this metric?"""
        mean_capable = {s.name for s in list_estimators(metric="mean")}
        assert {"sw-ems", "sr", "pm"} <= mean_capable
        assert "hh" not in mean_capable
        range_capable = {s.name for s in list_estimators(metric="range-0.1")}
        assert {"hh", "haar-hrr", "hh-admm", "sw-ems"} <= range_capable
        assert "sr" not in range_capable

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown estimator"):
            make_estimator("dp-sgd", 1.0, D)

    def test_duplicate_registration_rejected(self):
        spec = get_spec("sw-ems")
        with pytest.raises(ValueError, match="already registered"):
            register_estimator("sw-ems", spec.factory, kind="distribution")

    def test_overwrite_allowed_explicitly(self):
        spec = get_spec("sw-ems")
        register_estimator(
            "sw-ems",
            spec.factory,
            kind=spec.kind,
            supported_metrics=spec.supported_metrics,
            description=spec.description,
            tags=tuple(spec.tags),
            overwrite=True,
        )
        assert get_spec("sw-ems").description == spec.description
        _REGISTRY["sw-ems"] = spec  # restore the exact original object

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError, match="kind"):
            register_estimator("x", lambda e, d: None, kind="magic")


class TestRegistryRoundTrip:
    @pytest.mark.parametrize(
        "name", [spec.name for spec in list_estimators()]
    )
    def test_make_and_fit_every_registered_name(self, name, unit_values):
        spec = get_spec(name)
        est = make_estimator(name, 1.0, D)
        assert isinstance(est, Estimator)
        assert est.kind == spec.kind
        rng = np.random.default_rng(3)
        if spec.kind == "scalar":
            out = est.fit(unit_values, rng=rng)
            assert 0.0 <= out <= 1.0
        elif spec.kind == "marginals":
            matrix = np.column_stack([unit_values, 1.0 - unit_values])
            out = est.fit(matrix, rng=rng)
            assert len(out) == est.n_attributes
            for marginal in out:
                assert marginal.sum() == pytest.approx(1.0)
        elif spec.kind == "frequency":
            out = est.fit(rng.integers(0, D, 3000), rng=rng)
            assert out.shape == (D,)
            assert np.isfinite(out).all()
        else:
            out = est.fit(unit_values, rng=rng)
            assert out.shape == (D,)
            assert np.isfinite(out).all()
            if spec.kind == "distribution":
                assert (out >= -1e-12).all()
                assert out.sum() == pytest.approx(1.0)

    def test_kwargs_forwarded(self):
        est = make_estimator("cfo", 1.0, D, bins=8)
        assert est.bins == 8
        est = make_estimator("hh", 1.0, 64, branching=8)
        assert est.tree.branching == 8


class TestSingleDispatchTable:
    """No consumer keeps an independent dispatch table anymore."""

    def test_method_registry_is_a_view(self):
        for name, spec in METHOD_REGISTRY.items():
            assert spec is get_spec(name)

    def test_table2_tag_matches_paper(self):
        assert set(METHOD_REGISTRY) == {
            "sw-ems",
            "sw-em",
            "hh-admm",
            "cfo-16",
            "cfo-32",
            "cfo-64",
            "hh",
            "haar-hrr",
            "sr",
            "pm",
        }

    def test_choose_oracle_uses_registry(self):
        from repro.freq_oracle.adaptive import choose_oracle
        from repro.freq_oracle.grr import GRR
        from repro.freq_oracle.olh import OLH

        assert isinstance(choose_oracle(1.0, 4), GRR)
        assert isinstance(choose_oracle(1.0, 1024), OLH)
        assert isinstance(choose_oracle(1.0, 4), Estimator)


class TestEstimateDistributionViaRegistry:
    def test_non_sw_method_now_works(self, unit_values):
        out = estimate_distribution(
            unit_values, 1.0, d=D, method="cfo-16", rng=np.random.default_rng(0)
        )
        assert out.sum() == pytest.approx(1.0)

    def test_leaf_signed_rejected(self, unit_values):
        """hh/haar-hrr can return negative mass — not a distribution."""
        with pytest.raises(ValueError, match="leaf-signed"):
            estimate_distribution(unit_values, 1.0, d=D, method="haar-hrr")

    def test_scalar_rejected(self, unit_values):
        with pytest.raises(ValueError, match="scalar"):
            estimate_distribution(unit_values, 1.0, d=D, method="pm")

    def test_unknown_method_message(self, unit_values):
        with pytest.raises(ValueError, match="unknown method"):
            estimate_distribution(unit_values, 1.0, method="nope")
