"""Tests for the Estimator lifecycle: streaming, merge, and serialization."""

import json

import numpy as np
import pytest

from repro.api import Estimator, estimator_from_state, make_estimator
from repro.binning.cfo_binning import CFOBinning
from repro.core.pipeline import DiscreteSWEstimator, SWEstimator
from repro.freq_oracle.olh import OLH
from repro.hierarchy.admm import HHADMM
from repro.hierarchy.haar import HaarHRR
from repro.hierarchy.hh import HierarchicalHistogram
from repro.mean.scalar import ScalarMeanEstimator
from repro.protocol.client import SWClient
from repro.protocol.server import SWServer


@pytest.fixture(scope="module")
def values():
    return np.random.default_rng(41).beta(5.0, 2.0, 6000)


def _make(name, **kwargs):
    return make_estimator(name, 1.0, 64, **kwargs)


def _empty_olh_reports():
    from repro.freq_oracle.olh import OLHReports

    empty = np.array([], dtype=np.int64)
    return OLHReports(a=empty, b=empty, y=empty)


class TestStreaming:
    def test_partial_fit_accumulates(self, values):
        est = SWEstimator(1.0, d=32)
        est.partial_fit(values[:2000], rng=np.random.default_rng(0))
        assert est.n_reports == 2000
        est.partial_fit(values[2000:4000], rng=np.random.default_rng(1))
        assert est.n_reports == 4000
        out = est.estimate()
        assert out.sum() == pytest.approx(1.0)

    def test_estimate_before_ingest_raises(self):
        for est in (
            SWEstimator(1.0, d=32),
            DiscreteSWEstimator(1.0, d=32),
            CFOBinning(1.0, d=64, bins=16),
            HierarchicalHistogram(1.0, d=64),
            HHADMM(1.0, d=64),
            HaarHRR(1.0, d=64),
            ScalarMeanEstimator(1.0, mechanism="sr"),
            OLH(1.0, 32),
        ):
            with pytest.raises(RuntimeError, match="no reports"):
                est.estimate()

    def test_fit_equals_privatize_aggregate(self, values):
        reports = SWEstimator(1.0, d=32).privatize(
            values, rng=np.random.default_rng(5)
        )
        split = SWEstimator(1.0, d=32).aggregate(reports)
        whole = SWEstimator(1.0, d=32).fit(values, rng=np.random.default_rng(5))
        np.testing.assert_allclose(split, whole)

    def test_aggregate_resets_prior_state(self, values):
        est = SWEstimator(1.0, d=32)
        est.partial_fit(values[:1000], rng=np.random.default_rng(0))
        reports = est.privatize(values[1000:2000], rng=np.random.default_rng(1))
        est.aggregate(reports)
        assert est.n_reports == 1000  # only the aggregated batch remains

    def test_hierarchy_queries_never_serve_stale_cache(self, values):
        """range_query after a mid-round ingest must not use old estimates."""
        hh = HierarchicalHistogram(1.0, d=64)
        hh.partial_fit(values[:2000], rng=np.random.default_rng(0))
        hh.estimate()
        hh.partial_fit(values[2000:], rng=np.random.default_rng(1))
        with pytest.raises(RuntimeError, match="fit"):
            hh.range_query(0.2, 0.6)  # cache cleared; must re-estimate first
        hh.estimate()
        assert np.isfinite(hh.range_query(0.2, 0.6))

        haar = HaarHRR(1.0, d=64)
        haar.partial_fit(values[:2000], rng=np.random.default_rng(0))
        haar.estimate()
        haar.partial_fit(values[2000:], rng=np.random.default_rng(1))
        with pytest.raises(RuntimeError, match="fit"):
            haar.range_query(0.2, 0.6)

    def test_oracle_aggregate_resets_state_like_other_families(self):
        """FrequencyOracle.aggregate follows the same reset contract."""
        oracle = OLH(1.0, 16)
        data = np.random.default_rng(0).integers(0, 16, 500)
        oracle.partial_fit(data, rng=np.random.default_rng(1))
        batch = oracle.privatize(data, rng=np.random.default_rng(2))
        out = oracle.aggregate(batch)
        assert oracle.n_reports == 500  # state == exactly the aggregated batch
        np.testing.assert_allclose(out, oracle.estimate())

    def test_empty_shard_ingest_is_noop(self, values):
        """Empty batches must not poison streaming state (NaN regression)."""
        data = np.random.default_rng(0).integers(0, 16, 500)
        oracle = OLH(1.0, 16)
        oracle.partial_fit(data, rng=np.random.default_rng(1))
        before = oracle.estimate().copy()
        oracle.ingest(_empty_olh_reports())
        assert oracle.n_reports == 500
        np.testing.assert_allclose(oracle.estimate(), before)

        est = SWEstimator(1.0, d=32)
        est.partial_fit(values[:500], rng=np.random.default_rng(2))
        est.ingest(np.array([]))
        assert est.n_reports == 500

        cfo = CFOBinning(1.0, d=64, bins=16)
        cfo.partial_fit(values[:500], rng=np.random.default_rng(3))
        cfo.ingest(np.array([], dtype=np.int64))
        assert cfo.n_reports == 500
        assert np.isfinite(cfo.estimate()).all()

        scalar = ScalarMeanEstimator(1.0, mechanism="pm")
        scalar.partial_fit(values[:500], rng=np.random.default_rng(4))
        scalar.ingest(np.array([]))
        assert scalar.n_reports == 500


class TestMergeEquivalence:
    """merge() of two partial fits == a single fit on the combined reports."""

    def test_sw_merge_matches_single_aggregate(self, values):
        base = SWEstimator(1.0, d=32)
        reports = base.privatize(values, rng=np.random.default_rng(7))
        shard_a = SWEstimator(1.0, d=32)
        shard_b = SWEstimator(1.0, d=32)
        shard_a.ingest(reports[:3000])
        shard_b.ingest(reports[3000:])
        merged = shard_a.merge(shard_b).estimate()
        single = SWEstimator(1.0, d=32).aggregate(reports)
        np.testing.assert_allclose(merged, single)

    @pytest.mark.parametrize(
        "name", ["sw-discrete-ems", "cfo-16", "hh", "hh-admm", "haar-hrr", "olh"]
    )
    def test_merge_matches_sequential_ingest(self, name, values):
        """Two shards merged == one estimator ingesting both batches."""
        shard_a, shard_b, combined = _make(name), _make(name), _make(name)
        if name == "olh":
            data = np.random.default_rng(2).integers(0, 64, values.size)
        else:
            data = values
        batches = [
            _make(name).privatize(part, rng=np.random.default_rng(seed))
            for seed, part in enumerate(np.array_split(data, 2))
        ]
        shard_a.ingest(batches[0])
        shard_b.ingest(batches[1])
        combined.ingest(batches[0])
        combined.ingest(batches[1])
        merged = shard_a.merge(shard_b).estimate()
        np.testing.assert_allclose(merged, combined.estimate())

    def test_scalar_merge(self, values):
        reports = ScalarMeanEstimator(1.0, mechanism="pm").privatize(
            values, rng=np.random.default_rng(0)
        )
        shard_a = ScalarMeanEstimator(1.0, mechanism="pm")
        shard_b = ScalarMeanEstimator(1.0, mechanism="pm")
        shard_a.ingest(reports[:2500])
        shard_b.ingest(reports[2500:])
        combined = ScalarMeanEstimator(1.0, mechanism="pm")
        combined.ingest(reports)
        assert shard_a.merge(shard_b).estimate() == pytest.approx(
            combined.estimate()
        )

    def test_merge_rejects_different_params(self):
        with pytest.raises(ValueError, match="different parameters"):
            SWEstimator(1.0, d=32).merge(SWEstimator(2.0, d=32))

    def test_merge_rejects_different_types(self):
        with pytest.raises(TypeError, match="cannot merge"):
            SWEstimator(1.0, d=64).merge(CFOBinning(1.0, d=64))

    def test_server_merge_shards(self, values):
        client = SWClient("round", epsilon=1.0)
        shard_a = SWServer("round", epsilon=1.0, d=32)
        shard_b = SWServer("round", epsilon=1.0, d=32)
        whole = SWServer("round", epsilon=1.0, d=32)
        payload_a = client.report_batch(values[:3000], rng=np.random.default_rng(0))
        payload_b = client.report_batch(values[3000:], rng=np.random.default_rng(1))
        shard_a.ingest_batch(payload_a)
        shard_b.ingest_batch(payload_b)
        whole.ingest_batch(payload_a)
        whole.ingest_batch(payload_b)
        merged = shard_a.merge(shard_b)
        assert merged.n_reports == whole.n_reports
        np.testing.assert_allclose(merged.estimate(), whole.estimate())

    def test_server_merge_rejects_round_mismatch(self):
        with pytest.raises(ValueError, match="round"):
            SWServer("a", 1.0, d=32).merge(SWServer("b", 1.0, d=32))


class TestStateSerialization:
    """to_state()/from_state() survive a JSON round trip with state intact."""

    @pytest.mark.parametrize(
        "name",
        [
            "sw-ems",
            "sw-em",
            "sw-discrete-ems",
            "cfo-16",
            "hh",
            "hh-admm",
            "haar-hrr",
            "grr",
            "olh",
            "sr",
            "pm",
        ],
    )
    def test_round_trip_preserves_estimate(self, name, values):
        spec_kind = make_estimator(name, 1.0, 64).kind
        est = _make(name)
        if spec_kind == "frequency":
            data = np.random.default_rng(3).integers(0, 64, 4000)
        else:
            data = values
        est.partial_fit(data, rng=np.random.default_rng(11))
        payload = json.loads(json.dumps(est.to_state()))
        restored = estimator_from_state(payload)
        assert type(restored) is type(est)
        np.testing.assert_allclose(restored.estimate(), est.estimate())

    def test_restored_shard_can_keep_ingesting(self, values):
        """The serialized shard state is live, not a frozen snapshot."""
        est = SWEstimator(1.0, d=32)
        est.partial_fit(values[:2000], rng=np.random.default_rng(0))
        restored = Estimator.from_state(est.to_state())
        restored.partial_fit(values[2000:], rng=np.random.default_rng(1))
        est.partial_fit(values[2000:], rng=np.random.default_rng(1))
        np.testing.assert_allclose(restored.estimate(), est.estimate())

    def test_merge_of_deserialized_shards(self, values):
        """Shards can round-trip through JSON and still merge exactly."""
        reports = SWEstimator(1.0, d=32).privatize(
            values, rng=np.random.default_rng(1)
        )
        shard_a = SWEstimator(1.0, d=32)
        shard_b = SWEstimator(1.0, d=32)
        shard_a.ingest(reports[:3000])
        shard_b.ingest(reports[3000:])
        a2 = estimator_from_state(json.loads(json.dumps(shard_a.to_state())))
        b2 = estimator_from_state(json.loads(json.dumps(shard_b.to_state())))
        merged = a2.merge(b2).estimate()
        np.testing.assert_allclose(
            merged, SWEstimator(1.0, d=32).aggregate(reports)
        )

    def test_smooth_wave_estimator_state_and_merge(self, values):
        """WaveEstimator serializes/merges for every wave shape, not just SW."""
        from repro.core.pipeline import WaveEstimator
        from repro.core.waves import make_wave

        for shape in ("triangle", "cosine", "epanechnikov"):
            est = WaveEstimator(make_wave(shape, 1.0), d=16)
            est.partial_fit(values[:1500], rng=np.random.default_rng(0))
            restored = estimator_from_state(json.loads(json.dumps(est.to_state())))
            np.testing.assert_allclose(restored.estimate(), est.estimate())
            other = WaveEstimator(make_wave(shape, 1.0), d=16)
            other.partial_fit(values[1500:3000], rng=np.random.default_rng(1))
            est.merge(other)
            assert est.n_reports == 3000

    def test_multi_attribute_state_and_merge(self, values):
        from repro.multidim.marginals import MultiAttributeSW

        matrix = np.column_stack([values, 1.0 - values])
        shard_a = MultiAttributeSW(1.0, 2, d=16)
        shard_b = MultiAttributeSW(1.0, 2, d=16)
        combined = MultiAttributeSW(1.0, 2, d=16)
        batches = [
            MultiAttributeSW(1.0, 2, d=16).privatize(
                part, rng=np.random.default_rng(seed)
            )
            for seed, part in enumerate(
                (matrix[: len(matrix) // 2], matrix[len(matrix) // 2 :])
            )
        ]
        shard_a.ingest(batches[0])
        shard_b.ingest(batches[1])
        combined.ingest(batches[0])
        combined.ingest(batches[1])
        restored = estimator_from_state(
            json.loads(json.dumps(shard_b.to_state()))
        )
        merged = shard_a.merge(restored).estimate()
        for mine, theirs in zip(merged, combined.estimate(), strict=True):
            np.testing.assert_allclose(mine, theirs)

    def test_server_state_round_trip(self, values):
        client = SWClient("r9", epsilon=1.0)
        server = SWServer("r9", epsilon=1.0, d=32)
        server.ingest_batch(client.report_batch(values, rng=np.random.default_rng(0)))
        payload = json.loads(json.dumps(server.to_state()))
        restored = SWServer.from_state(payload)
        assert restored.round_id == "r9"
        assert restored.n_reports == server.n_reports
        np.testing.assert_allclose(restored.estimate(), server.estimate())

    def test_rejects_non_estimator_class(self):
        with pytest.raises(ValueError, match="not an Estimator"):
            Estimator.from_state(
                {"class": "builtins:dict", "params": {}, "state": {}}
            )

    def test_rejects_non_class_path(self):
        """A function path must raise ValueError, not leak a TypeError."""
        with pytest.raises(ValueError, match="not an Estimator"):
            Estimator.from_state(
                {
                    "class": "repro.api.registry:make_estimator",
                    "params": {},
                    "state": {},
                }
            )

    def test_rejects_non_mechanism_class_in_spec(self):
        """A hostile mechanism spec must be refused before instantiation."""
        payload = SWEstimator(1.0, d=16).to_state()
        payload["class"] = "repro.core.pipeline:WaveEstimator"
        payload["params"] = dict(payload["params"])
        payload["params"].pop("epsilon", None)
        payload["params"].pop("b", None)
        payload["params"]["d_out"] = 16
        payload["params"]["mechanism"] = {
            "__mechanism__": True,
            "class": "subprocess:Popen",
            "params": {"args": ["true"]},
        }
        with pytest.raises(ValueError, match="not a Mechanism"):
            Estimator.from_state(payload)


class TestReprs:
    def test_estimator_reprs_are_self_describing(self):
        r = repr(SWEstimator(1.0, d=64))
        assert r.startswith(
            "SWEstimator(epsilon=1.0, d=64, d_out=64, postprocess='ems', b="
        )
        r = repr(DiscreteSWEstimator(1.0, d=64))
        assert "epsilon=1.0" in r and "d=64" in r and "postprocess='ems'" in r
        r = repr(CFOBinning(1.0, d=64, bins=16))
        assert "bins=16" in r and "norm-sub" in r
        r = repr(HierarchicalHistogram(1.0, d=64))
        assert "branching=4" in r and "split='population'" in r
        r = repr(HHADMM(2.0, d=64))
        assert "epsilon=2.0" in r
        r = repr(HaarHRR(1.0, d=64))
        assert r == "HaarHRR(epsilon=1.0, d=64)"
        r = repr(ScalarMeanEstimator(1.0, mechanism="sr"))
        assert "mechanism='sr'" in r
        r = repr(OLH(1.0, 32))
        assert "g=" in r and "d=32" in r

    def test_server_repr(self):
        r = repr(SWServer("survey", 1.0, d=32))
        assert "round_id='survey'" in r and "n_reports=0" in r
