"""Unit tests for the numerical LDP auditor."""

import math

import numpy as np
import pytest

from repro.core.square_wave import SquareWave
from repro.privacy.audit import AuditResult, audit_continuous_mechanism, audit_matrix


class TestAuditMatrix:
    def test_grr_matrix_passes(self):
        eps = 1.0
        p = math.exp(eps) / (math.exp(eps) + 3)
        q = 1 / (math.exp(eps) + 3)
        m = np.full((4, 4), q)
        np.fill_diagonal(m, p)
        result = audit_matrix(m, eps)
        assert result.satisfied
        assert result.effective_epsilon == pytest.approx(eps)

    def test_violation_detected(self):
        """A mechanism that is only (eps+delta)-LDP must fail the eps audit."""
        eps = 1.0
        ratio = math.exp(1.2)
        m = np.array([[ratio, 1.0], [1.0, ratio]])
        m /= m.sum(axis=0)
        assert not audit_matrix(m, eps).satisfied

    def test_zero_entries_rejected(self):
        with pytest.raises(ValueError, match="zero"):
            audit_matrix(np.array([[1.0, 0.0], [0.0, 1.0]]), 1.0)

    def test_uniform_matrix_is_zero_dp(self):
        m = np.full((4, 4), 0.25)
        result = audit_matrix(m, 0.001)
        assert result.satisfied
        assert result.max_ratio == pytest.approx(1.0)


class TestAuditContinuous:
    def test_sw_exact_ratio(self):
        result = audit_continuous_mechanism(SquareWave(1.0))
        assert result.max_ratio == pytest.approx(math.e, rel=1e-9)
        assert result.satisfied

    def test_broken_mechanism_detected(self):
        """Scaling the near-band density breaks LDP and the audit sees it."""

        class Broken(SquareWave):
            def pdf(self, v, v_tilde):
                base = super().pdf(v, v_tilde)
                return np.where(base == self.p, base * 1.5, base)

        assert not audit_continuous_mechanism(Broken(1.0)).satisfied

    def test_zero_density_rejected(self):
        class ZeroTail(SquareWave):
            def pdf(self, v, v_tilde):
                base = super().pdf(v, v_tilde)
                return np.where(base == self.q, 0.0, base)

        with pytest.raises(ValueError, match="zero-density"):
            audit_continuous_mechanism(ZeroTail(1.0))

    def test_result_fields(self):
        result = audit_continuous_mechanism(SquareWave(2.0))
        assert isinstance(result, AuditResult)
        assert result.epsilon == 2.0
        assert result.effective_epsilon == pytest.approx(2.0, abs=1e-6)
