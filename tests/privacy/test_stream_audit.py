"""Multi-round budget accounting: sequential composition across a window."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.privacy import StreamAuditResult, audit_budget, audit_stream_budget

_allocations = st.dictionaries(
    st.text(min_size=1, max_size=8),
    st.floats(min_value=1e-3, max_value=8.0, allow_nan=False),
    min_size=1,
    max_size=5,
)


class TestStreamAuditBasics:
    def test_every_round_multiplies_spend(self):
        result = audit_stream_budget({"a": 0.5, "b": 0.5}, 4.0, rounds=3)
        assert result.per_round_epsilon == pytest.approx(1.0)
        assert result.per_window_epsilon == pytest.approx(3.0)
        assert result.satisfied
        assert result.slack == pytest.approx(1.0)

    def test_once_participation_is_parallel_across_rounds(self):
        result = audit_stream_budget(
            {"a": 1.0}, 1.0, rounds=100, participation="once"
        )
        assert result.per_window_epsilon == pytest.approx(1.0)
        assert result.satisfied

    def test_over_budget_window_flagged(self):
        result = audit_stream_budget({"a": 1.0}, 2.0, rounds=3)
        assert not result.satisfied
        assert result.slack == pytest.approx(-1.0)

    def test_rounds_validation(self):
        with pytest.raises(ValueError, match="rounds"):
            audit_stream_budget({"a": 1.0}, 1.0, rounds=0)

    def test_participation_validation(self):
        with pytest.raises(ValueError, match="participation"):
            audit_stream_budget({"a": 1.0}, 1.0, rounds=1, participation="maybe")

    def test_composition_delegates_to_one_shot_audit(self):
        with pytest.raises(ValueError, match="composition"):
            audit_stream_budget({"a": 1.0}, 1.0, rounds=1, composition="serial")

    def test_to_dict_is_json_ready(self):
        result = audit_stream_budget({"a": 0.5}, 1.0, rounds=2)
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["rounds"] == 2
        assert payload["per_attribute"] == {"a": 0.5}
        assert payload["satisfied"] is True


class TestStreamAuditProperties:
    @settings(max_examples=100, deadline=None)
    @given(
        allocation=_allocations,
        budget=st.floats(min_value=1e-2, max_value=100.0, allow_nan=False),
        rounds=st.integers(min_value=1, max_value=64),
        composition=st.sampled_from(["sequential", "parallel"]),
    )
    def test_window_spend_is_rounds_times_per_round(
        self, allocation, budget, rounds, composition
    ):
        result = audit_stream_budget(
            allocation, budget, rounds=rounds, composition=composition
        )
        assert isinstance(result, StreamAuditResult)
        one_shot = audit_budget(allocation, budget, composition=composition)
        assert result.per_round_epsilon == pytest.approx(one_shot.per_user_epsilon)
        assert result.per_window_epsilon == pytest.approx(
            rounds * result.per_round_epsilon
        )

    @settings(max_examples=100, deadline=None)
    @given(
        allocation=_allocations,
        budget=st.floats(min_value=1e-2, max_value=100.0, allow_nan=False),
        rounds=st.integers(min_value=1, max_value=64),
    )
    def test_once_participation_never_exceeds_every_round(
        self, allocation, budget, rounds
    ):
        once = audit_stream_budget(
            allocation, budget, rounds=rounds, participation="once"
        )
        every = audit_stream_budget(allocation, budget, rounds=rounds)
        assert once.per_window_epsilon <= every.per_window_epsilon
        assert once.per_window_epsilon == pytest.approx(once.per_round_epsilon)
        if every.satisfied:
            assert once.satisfied

    @settings(max_examples=100, deadline=None)
    @given(
        allocation=_allocations,
        rounds=st.integers(min_value=1, max_value=64),
    )
    def test_rounds_one_matches_one_shot_audit(self, allocation, rounds):
        """A one-round stream audit and the plan audit agree on satisfied."""
        budget = 2.0
        stream = audit_stream_budget(allocation, budget, rounds=1)
        one_shot = audit_budget(allocation, budget)
        assert stream.satisfied == one_shot.satisfied
        assert stream.per_window_epsilon == pytest.approx(
            one_shot.per_user_epsilon
        )

    @settings(max_examples=60, deadline=None)
    @given(
        allocation=_allocations,
        budget=st.floats(min_value=1e-2, max_value=100.0, allow_nan=False),
        rounds=st.integers(min_value=1, max_value=32),
    )
    def test_spend_is_monotone_in_rounds(self, allocation, budget, rounds):
        shorter = audit_stream_budget(allocation, budget, rounds=rounds)
        longer = audit_stream_budget(allocation, budget, rounds=rounds + 1)
        assert longer.per_window_epsilon > shorter.per_window_epsilon
        if longer.satisfied:
            assert shorter.satisfied
