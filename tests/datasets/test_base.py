"""Unit tests for the Dataset container."""

import numpy as np
import pytest

from repro.datasets.base import Dataset


def make_dataset(values=None, bins=8):
    if values is None:
        values = np.linspace(0.0, 1.0, 100)
    return Dataset(name="test", values=values, default_bins=bins)


class TestDataset:
    def test_histogram_sums_to_one(self):
        ds = make_dataset()
        assert ds.histogram().sum() == pytest.approx(1.0)

    def test_histogram_default_granularity(self):
        assert make_dataset(bins=16).histogram().size == 16

    def test_histogram_custom_granularity(self):
        assert make_dataset().histogram(32).size == 32

    def test_histogram_cached_identity(self):
        ds = make_dataset()
        assert ds.histogram(8) is ds.histogram(8)

    def test_histogram_counts_correct(self):
        ds = make_dataset(values=np.array([0.1, 0.1, 0.9]), bins=2)
        np.testing.assert_allclose(ds.histogram(), [2 / 3, 1 / 3])

    def test_n(self):
        assert make_dataset().n == 100

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            make_dataset(values=np.array([0.5, 1.5]))

    def test_subsample_size(self):
        sub = make_dataset().subsample(10, rng=0)
        assert sub.n == 10
        assert sub.default_bins == 8

    def test_subsample_values_from_parent(self):
        ds = make_dataset()
        sub = ds.subsample(20, rng=0)
        assert np.isin(sub.values, ds.values).all()

    def test_subsample_rejects_oversize(self):
        with pytest.raises(ValueError):
            make_dataset().subsample(101)
