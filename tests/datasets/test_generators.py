"""Unit tests for the dataset generators."""

import numpy as np
import pytest

from repro.datasets import (
    beta_dataset,
    income_dataset,
    load_dataset,
    retirement_dataset,
    spiky_mixture,
    taxi_dataset,
    truncated_lognormal,
    truncated_normal,
)
from repro.datasets.registry import DATASET_NAMES, PAPER_SIZES

SMALL_N = 5_000


class TestBuildingBlocks:
    def test_truncated_normal_respects_bounds(self, rng):
        out = truncated_normal(1000, mean=0.5, std=2.0, low=0.0, high=1.0, rng=rng)
        assert out.min() >= 0.0 and out.max() <= 1.0
        assert out.size == 1000

    def test_truncated_normal_rejects_bad_std(self):
        with pytest.raises(ValueError):
            truncated_normal(10, 0.0, -1.0, 0.0, 1.0)

    def test_truncated_lognormal_bounds(self, rng):
        out = truncated_lognormal(1000, mu=0.0, sigma=1.0, high=3.0, rng=rng)
        assert out.min() >= 0.0 and out.max() <= 3.0

    def test_spiky_mixture_hits_spikes(self, rng):
        body = rng.random(1000)
        out = spiky_mixture(
            1000,
            body=body,
            spike_positions=np.array([0.5]),
            spike_weights=np.array([1.0]),
            spike_fraction=0.5,
            rng=rng,
        )
        frac_at_spike = (out == 0.5).mean()
        assert 0.3 < frac_at_spike < 0.7

    def test_spiky_mixture_zero_fraction_is_body(self, rng):
        body = rng.random(100)
        out = spiky_mixture(
            100, body, np.array([0.5]), np.array([1.0]), 0.0, rng=rng
        )
        np.testing.assert_array_equal(out, body[:100])

    def test_spiky_mixture_validates_fraction(self, rng):
        with pytest.raises(ValueError):
            spiky_mixture(10, rng.random(10), np.array([0.5]), np.array([1.0]), 1.5)


class TestGenerators:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_values_in_unit_interval(self, name):
        ds = load_dataset(name, n=SMALL_N, rng=0)
        assert ds.values.min() >= 0.0 and ds.values.max() <= 1.0
        assert ds.n == SMALL_N

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_deterministic_with_seed(self, name):
        a = load_dataset(name, n=1000, rng=5).values
        b = load_dataset(name, n=1000, rng=5).values
        np.testing.assert_array_equal(a, b)

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_default_bins_match_paper(self, name):
        ds = load_dataset(name, n=1000, rng=0)
        assert ds.default_bins == (256 if name == "beta" else 1024)

    def test_paper_sizes_recorded(self):
        assert PAPER_SIZES["beta"] == 100_000
        assert PAPER_SIZES["taxi"] == 2_189_968
        assert PAPER_SIZES["income"] == 2_308_374
        assert PAPER_SIZES["retirement"] == 178_012

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown dataset"):
            load_dataset("nope")

    def test_bad_n_rejected(self):
        with pytest.raises(ValueError):
            load_dataset("beta", n=0)


class TestShapeFeatures:
    """The substitutes must reproduce the shape features the paper relies on."""

    def test_beta_mean_matches_theory(self):
        ds = beta_dataset(n=50_000, rng=1)
        assert ds.values.mean() == pytest.approx(5 / 7, abs=0.01)

    def test_taxi_is_multimodal(self):
        ds = taxi_dataset(n=50_000, rng=1)
        hist = ds.histogram(48)  # half-hour resolution
        # Overnight trough (around 4am = bucket 8) well below evening peak.
        trough = hist[6:10].mean()
        peak = hist.max()
        assert peak > 4 * trough

    def test_income_is_spiky(self):
        ds = income_dataset(n=100_000, rng=1)
        hist = ds.histogram(1024)
        positive = hist[hist > 0]
        # Spikes at round incomes tower over the local body.
        assert hist.max() / np.median(positive) > 5.0

    def test_income_right_skewed(self):
        ds = income_dataset(n=50_000, rng=1)
        assert np.median(ds.values) < ds.values.mean()

    def test_retirement_zero_spike(self):
        ds = retirement_dataset(n=50_000, rng=1)
        hist = ds.histogram(1024)
        # Mass in the first ~$500 band dominated by zero-contribution users.
        assert hist[:9].sum() > 0.1

    def test_retirement_right_tail_decays(self):
        ds = retirement_dataset(n=50_000, rng=1)
        hist = ds.histogram(64)
        assert hist[-8:].sum() < 0.05
