"""Cross-cutting property-based tests on library invariants.

Complements the per-module property tests with invariants that span
subsystems: wire-format round-trips, reconstruction on rectangular grids,
binary-tree decompositions, and post-processor relationships.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core.em import expectation_maximization
from repro.core.square_wave import SquareWave
from repro.hierarchy.tree import TreeLayout, range_decomposition
from repro.metrics.distances import ks_distance, wasserstein_distance
from repro.postprocess import norm_cut, norm_full, norm_mul, norm_sub
from repro.protocol.messages import SWReport


class TestProtocolProperties:
    @given(
        st.text(
            alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\n\r"),
            min_size=1,
            max_size=40,
        ),
        st.floats(-2.0, 2.0, allow_nan=False),
    )
    def test_report_json_roundtrip(self, round_id, value):
        report = SWReport(round_id, value)
        assert SWReport.from_json(report.to_json()) == report


class TestEMRectangularGrids:
    @pytest.mark.parametrize("d,d_out", [(16, 32), (32, 16), (8, 64)])
    def test_reconstruction_on_mismatched_grids(self, d, d_out, rng):
        """EM handles d_out != d (the paper's d~ knob) and still returns a
        valid d-bucket distribution close to the truth."""
        sw = SquareWave(2.0)
        matrix = sw.transition_matrix(d, d_out)
        truth = rng.dirichlet(np.ones(d) * 8)
        counts = rng.multinomial(300_000, matrix @ truth).astype(float)
        result = expectation_maximization(matrix, counts, tol=1e-8, max_iter=5000)
        assert result.estimate.shape == (d,)
        assert wasserstein_distance(truth, result.estimate) < 0.05

    @given(st.integers(2, 6), st.integers(2, 6))
    @settings(max_examples=10)
    def test_matrix_shapes_consistent(self, log_d, log_dout):
        sw = SquareWave(1.0)
        d, d_out = 2**log_d, 2**log_dout
        m = sw.transition_matrix(d, d_out)
        assert m.shape == (d_out, d)
        np.testing.assert_allclose(m.sum(axis=0), 1.0, atol=1e-9)


class TestBinaryTreeProperties:
    @given(st.integers(0, 255), st.integers(0, 255))
    @settings(max_examples=30)
    def test_binary_decomposition_partitions(self, a, b):
        lo, hi = min(a, b), max(a, b)
        tree = TreeLayout(256, 2)
        covered: list[int] = []
        for level, index in range_decomposition(tree, lo, hi):
            span = tree.leaf_span(level, index)
            covered.extend(range(*span))
        assert covered == list(range(lo, hi))

    @given(st.integers(1, 255))
    @settings(max_examples=30)
    def test_prefix_decomposition_is_compact(self, hi):
        """A prefix range [0, hi) needs at most one node per level in a
        binary tree."""
        tree = TreeLayout(256, 2)
        nodes = range_decomposition(tree, 0, hi)
        assert len(nodes) <= tree.height


class TestPostprocessorRelationships:
    vectors = hnp.arrays(
        np.float64,
        st.integers(2, 40),
        elements=st.floats(-3.0, 3.0, allow_nan=False, allow_infinity=False),
    )

    @given(vectors)
    def test_all_variants_agree_on_valid_distributions(self, v):
        """Every post-processor is the identity on an already-valid
        distribution (up to float noise)."""
        total = np.abs(v).sum()
        if total == 0:
            return
        x = np.abs(v) / total
        for fn in (norm_sub, norm_mul, norm_full):
            np.testing.assert_allclose(fn(x), x, atol=1e-9)
        # norm_cut trims the marginal kept entry; allow bucket-level slack.
        np.testing.assert_allclose(norm_cut(x).sum(), 1.0, atol=1e-9)

    @given(vectors)
    def test_norm_sub_never_farther_than_norm_mul_in_l2(self, v):
        """Norm-Sub's additive correction is an L2 projection onto its
        support; multiplicative rescaling can only be as close or farther
        from the raw estimates."""
        sub = norm_sub(v)
        mul = norm_mul(v)
        # Compare distances on the positive support where both act.
        d_sub = np.linalg.norm(sub - v)
        d_mul = np.linalg.norm(mul - v)
        assert d_sub <= d_mul + 1e-6


class TestMetricScaleInvariance:
    @given(st.integers(1, 5))
    @settings(max_examples=10)
    def test_w1_refinement_stability(self, factor):
        """Refining both histograms by splitting each bucket uniformly
        changes W1 only by the CDF-quadrature correction, O(1/d) — the
        metric is domain-scaled, not bucket-count-scaled."""
        gen = np.random.default_rng(0)
        a = gen.dirichlet(np.ones(16))
        b = gen.dirichlet(np.ones(16))
        coarse = wasserstein_distance(a, b)
        fine_a = np.repeat(a / factor, factor)
        fine_b = np.repeat(b / factor, factor)
        fine = wasserstein_distance(fine_a, fine_b)
        assert fine == pytest.approx(coarse, rel=0.05)

    @given(st.integers(1, 5))
    @settings(max_examples=10)
    def test_ks_refinement_stability(self, factor):
        gen = np.random.default_rng(1)
        a = gen.dirichlet(np.ones(16))
        b = gen.dirichlet(np.ones(16))
        coarse = ks_distance(a, b)
        fine = ks_distance(np.repeat(a / factor, factor), np.repeat(b / factor, factor))
        assert fine == pytest.approx(coarse, abs=1e-9)
