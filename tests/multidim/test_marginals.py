"""Tests for multi-attribute marginal estimation."""

import numpy as np
import pytest

from repro.metrics.distances import wasserstein_distance
from repro.multidim.marginals import MultiAttributeReports, MultiAttributeSW
from tests.conftest import true_histogram


@pytest.fixture(scope="module")
def two_attribute_data():
    gen = np.random.default_rng(11)
    n = 60_000
    # Attribute 0: left-skewed; attribute 1: bimodal.
    a0 = gen.beta(2, 5, n)
    a1 = np.clip(
        np.where(gen.random(n) < 0.5, gen.normal(0.3, 0.05, n), gen.normal(0.8, 0.05, n)),
        0,
        1,
    )
    return np.column_stack([a0, a1])


class TestConstruction:
    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            MultiAttributeSW(1.0, n_attributes=0)

    def test_estimators_per_attribute(self):
        est = MultiAttributeSW(1.0, n_attributes=3, d=64)
        assert len(est.estimators) == 3

    def test_rejects_wrong_shape(self, rng):
        est = MultiAttributeSW(1.0, n_attributes=2, d=32)
        with pytest.raises(ValueError, match="shape"):
            est.privatize(rng.random(10), rng=rng)

    def test_rejects_out_of_range(self, rng):
        est = MultiAttributeSW(1.0, n_attributes=2, d=32)
        bad = np.full((5, 2), 1.5)
        with pytest.raises(ValueError):
            est.privatize(bad, rng=rng)


class TestPrivatize:
    def test_one_report_per_user(self, two_attribute_data, rng):
        est = MultiAttributeSW(1.0, n_attributes=2, d=64)
        reports = est.privatize(two_attribute_data, rng=rng)
        assert isinstance(reports, MultiAttributeReports)
        assert reports.n == two_attribute_data.shape[0]

    def test_assignment_roughly_uniform(self, two_attribute_data, rng):
        est = MultiAttributeSW(1.0, n_attributes=2, d=64)
        reports = est.privatize(two_attribute_data, rng=rng)
        share = (reports.attribute == 0).mean()
        assert share == pytest.approx(0.5, abs=0.02)

    def test_split_population_helper(self, rng):
        from repro.multidim import split_population

        assignment = split_population(10_000, 4, rng)
        assert assignment.shape == (10_000,)
        assert set(np.unique(assignment)) <= {0, 1, 2, 3}
        for slot in range(4):
            assert (assignment == slot).mean() == pytest.approx(0.25, abs=0.03)
        with pytest.raises(ValueError, match="n must be"):
            split_population(0, 2, rng)

    def test_reports_in_sw_domain(self, two_attribute_data, rng):
        est = MultiAttributeSW(1.0, n_attributes=2, d=64)
        reports = est.privatize(two_attribute_data, rng=rng)
        b = est.estimators[0].mechanism.b
        assert reports.value.min() >= -b - 1e-12
        assert reports.value.max() <= 1 + b + 1e-12


class TestAggregate:
    def test_recovers_both_marginals(self, two_attribute_data):
        # eps=2 keeps the SW blur narrower than the bimodal attribute's
        # sharp modes; at eps=1 the smoothing bias dominates its W1.
        est = MultiAttributeSW(2.0, n_attributes=2, d=64)
        marginals = est.fit(two_attribute_data, rng=np.random.default_rng(0))
        assert len(marginals) == 2
        for k in range(2):
            truth = true_histogram(two_attribute_data[:, k], 64)
            assert wasserstein_distance(truth, marginals[k]) < 0.03

    def test_marginals_are_distinct(self, two_attribute_data):
        est = MultiAttributeSW(1.0, n_attributes=2, d=64)
        marginals = est.fit(two_attribute_data, rng=np.random.default_rng(0))
        # Attribute 1 is bimodal; attribute 0 is not.
        assert wasserstein_distance(marginals[0], marginals[1]) > 0.05

    def test_empty_attribute_gets_uniform(self, rng):
        est = MultiAttributeSW(1.0, n_attributes=2, d=16)
        reports = MultiAttributeReports(
            attribute=np.zeros(100, dtype=np.int64),
            value=rng.uniform(0, 1, 100),
        )
        marginals = est.aggregate(reports)
        np.testing.assert_allclose(marginals[1], 1.0 / 16)

    def test_diagnostics_per_attribute(self, two_attribute_data):
        est = MultiAttributeSW(1.0, n_attributes=2, d=64)
        est.fit(two_attribute_data, rng=np.random.default_rng(0))
        for sub in est.estimators:
            assert sub.result_ is not None


class TestAccuracyScaling:
    def test_more_attributes_worse_marginals(self, two_attribute_data):
        """Splitting the population k ways costs accuracy per marginal.

        Measured in the noise-dominated regime (eps=2, 24k users, k=8 gives
        3k users per attribute) and averaged over seeds; at low epsilon the
        EMS bias floor hides the population-size effect.
        """
        a0 = two_attribute_data[:24_000, 0]
        truth = true_histogram(a0, 64)
        err_k = {}
        for k in (1, 8):
            errors = []
            for seed in (1, 2, 3):
                data = np.tile(a0[:, None], (1, k))
                est = MultiAttributeSW(2.0, n_attributes=k, d=64)
                marginals = est.fit(data, rng=np.random.default_rng(seed))
                errors.append(wasserstein_distance(truth, marginals[0]))
            err_k[k] = np.mean(errors)
        assert err_k[1] < err_k[8]
