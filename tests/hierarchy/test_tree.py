"""Unit and property tests for the tree layout and range decomposition."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.hierarchy.tree import TreeLayout, range_decomposition


class TestTreeLayout:
    def test_level_sizes(self):
        t = TreeLayout(64, 4)
        assert t.level_sizes == (1, 4, 16, 64)
        assert t.height == 3
        assert t.total_nodes == 85

    def test_binary_tree(self):
        t = TreeLayout(8, 2)
        assert t.level_sizes == (1, 2, 4, 8)

    def test_rejects_non_power(self):
        with pytest.raises(ValueError, match="power"):
            TreeLayout(48, 4)

    def test_rejects_small_branching(self):
        with pytest.raises(ValueError):
            TreeLayout(8, 1)

    def test_offsets(self):
        t = TreeLayout(16, 4)
        assert t.level_offset(0) == 0
        assert t.level_offset(1) == 1
        assert t.level_offset(2) == 5

    def test_level_slice(self):
        t = TreeLayout(16, 4)
        assert t.level_slice(2) == slice(5, 21)

    def test_reporting_levels_exclude_root(self):
        assert TreeLayout(16, 4).reporting_levels == (1, 2)

    def test_ancestor(self):
        t = TreeLayout(16, 4)
        leaves = np.array([0, 3, 4, 15])
        np.testing.assert_array_equal(t.ancestor(leaves, 1), [0, 0, 1, 3])
        np.testing.assert_array_equal(t.ancestor(leaves, 2), leaves)

    def test_children(self):
        t = TreeLayout(16, 4)
        assert t.children(0, 0) == [(1, 0), (1, 1), (1, 2), (1, 3)]

    def test_leaf_span(self):
        t = TreeLayout(16, 4)
        assert t.leaf_span(1, 2) == (8, 12)
        assert t.leaf_span(2, 5) == (5, 6)

    def test_constraint_matrix_shape(self):
        t = TreeLayout(16, 4)
        a = t.constraint_matrix()
        assert a.shape == (5, 21)  # root + 4 level-1 nodes are internal

    def test_constraint_matrix_annihilates_consistent_vector(self):
        t = TreeLayout(16, 4)
        leaves = np.random.default_rng(0).dirichlet(np.ones(16))
        vec = np.empty(t.total_nodes)
        vec[t.level_slice(2)] = leaves
        vec[t.level_slice(1)] = leaves.reshape(4, 4).sum(axis=1)
        vec[0] = leaves.sum()
        np.testing.assert_allclose(t.constraint_matrix() @ vec, 0.0, atol=1e-12)

    def test_constraint_matrix_detects_inconsistency(self):
        t = TreeLayout(16, 4)
        vec = np.zeros(t.total_nodes)
        vec[0] = 1.0  # root=1 but children all zero
        assert np.abs(t.constraint_matrix() @ vec).max() == 1.0


class TestRangeDecomposition:
    def test_full_domain_is_root(self):
        t = TreeLayout(16, 4)
        assert range_decomposition(t, 0, 16) == [(0, 0)]

    def test_single_leaf(self):
        t = TreeLayout(16, 4)
        assert range_decomposition(t, 5, 6) == [(2, 5)]

    def test_aligned_block(self):
        t = TreeLayout(16, 4)
        assert range_decomposition(t, 4, 8) == [(1, 1)]

    def test_empty_range(self):
        t = TreeLayout(16, 4)
        assert range_decomposition(t, 3, 3) == []

    def test_rejects_bad_range(self):
        t = TreeLayout(16, 4)
        with pytest.raises(ValueError):
            range_decomposition(t, 5, 3)
        with pytest.raises(ValueError):
            range_decomposition(t, 0, 17)

    @given(st.integers(0, 64), st.integers(0, 64))
    def test_decomposition_partitions_range(self, a, b):
        lo, hi = min(a, b), max(a, b)
        t = TreeLayout(64, 4)
        covered = []
        for level, index in range_decomposition(t, lo, hi):
            span_lo, span_hi = t.leaf_span(level, index)
            covered.extend(range(span_lo, span_hi))
        assert covered == list(range(lo, hi))

    @given(st.integers(0, 1023), st.integers(0, 1023))
    def test_decomposition_is_logarithmic(self, a, b):
        lo, hi = min(a, b), max(a, b)
        t = TreeLayout(1024, 4)
        nodes = range_decomposition(t, lo, hi)
        # At most 2 * (branching - 1) * height blocks.
        assert len(nodes) <= 2 * 3 * t.height
