"""Unit and convergence tests for HH-ADMM."""

import numpy as np
import pytest

from repro.hierarchy.admm import HHADMM, admm_postprocess
from repro.hierarchy.tree import TreeLayout
from repro.metrics.distances import wasserstein_distance
from tests.conftest import true_histogram


def noisy_tree_vector(tree, leaves_truth, noise, rng):
    """Exact node vector plus Gaussian noise (root pinned to 1)."""
    vec = np.empty(tree.total_nodes)
    current = np.asarray(leaves_truth, dtype=float)
    for level in range(tree.height, -1, -1):
        vec[tree.level_slice(level)] = current
        if level:
            current = current.reshape(-1, tree.branching).sum(axis=1)
    vec += rng.normal(0, noise, vec.size)
    vec[0] = 1.0
    return vec


class TestADMMPostprocess:
    def test_converges(self, rng):
        t = TreeLayout(16, 4)
        truth = np.random.default_rng(0).dirichlet(np.ones(16))
        raw = noisy_tree_vector(t, truth, 0.02, rng)
        x, diag = admm_postprocess(t, raw)
        assert diag.converged
        assert diag.final_residual < 1e-6

    def test_constraints_satisfied_at_convergence(self, rng):
        t = TreeLayout(16, 4)
        truth = np.random.default_rng(0).dirichlet(np.ones(16))
        raw = noisy_tree_vector(t, truth, 0.05, rng)
        x, diag = admm_postprocess(t, raw, tol=1e-8, max_iter=2000)
        # Consistency
        np.testing.assert_allclose(t.constraint_matrix() @ x, 0.0, atol=1e-5)
        # Near-nonnegativity and per-level normalization
        assert x.min() > -1e-5
        for level in range(t.height + 1):
            assert x[t.level_slice(level)].sum() == pytest.approx(1.0, abs=1e-4)

    def test_improves_over_raw(self, rng):
        """ADMM post-processing reduces leaf error versus raw noisy
        estimates — the point of Section 4.3."""
        t = TreeLayout(64, 4)
        truth = np.random.default_rng(5).dirichlet(np.ones(64) * 2)
        raw_err, post_err = 0.0, 0.0
        for seed in range(5):
            gen = np.random.default_rng(seed)
            raw = noisy_tree_vector(t, truth, 0.01, gen)
            x, _ = admm_postprocess(t, raw)
            leaf = t.level_slice(t.height)
            raw_err += np.abs(raw[leaf] - truth).sum()
            post_err += np.abs(x[leaf] - truth).sum()
        assert post_err < raw_err

    def test_fixed_point_on_feasible_input(self):
        t = TreeLayout(16, 4)
        truth = np.random.default_rng(1).dirichlet(np.ones(16))
        feasible = noisy_tree_vector(t, truth, 0.0, np.random.default_rng(0))
        x, diag = admm_postprocess(t, feasible)
        np.testing.assert_allclose(x, feasible, atol=1e-4)

    def test_iteration_cap(self, rng):
        t = TreeLayout(16, 4)
        raw = rng.normal(size=t.total_nodes)
        _, diag = admm_postprocess(t, raw, max_iter=3, tol=1e-15)
        assert diag.iterations == 3
        assert not diag.converged

    def test_rejects_wrong_shape(self):
        t = TreeLayout(16, 4)
        with pytest.raises(ValueError):
            admm_postprocess(t, np.zeros(7))

    def test_rejects_bad_rho(self, rng):
        t = TreeLayout(16, 4)
        with pytest.raises(ValueError):
            admm_postprocess(t, rng.normal(size=t.total_nodes), rho=0.0)


class TestHHADMMEstimator:
    def test_output_is_distribution(self, beta_values, rng):
        est = HHADMM(1.0, d=64, branching=4)
        out = est.fit(beta_values, rng=rng)
        assert out.shape == (64,)
        assert (out >= 0).all()
        assert out.sum() == pytest.approx(1.0)

    def test_diagnostics_available(self, beta_values, rng):
        est = HHADMM(1.0, d=64)
        est.fit(beta_values, rng=rng)
        assert est.diagnostics_ is not None
        assert est.diagnostics_.iterations >= 1

    def test_beats_unpostprocessed_hh_on_w1(self, beta_values):
        """HH-ADMM's distribution is closer (W1) than clamped raw HH."""
        from repro.hierarchy.hh import HierarchicalHistogram
        from repro.postprocess.norm_sub import norm_sub

        truth = true_histogram(beta_values, 64)
        admm_err, hh_err = [], []
        for seed in range(3):
            admm = HHADMM(1.0, d=64).fit(beta_values, rng=np.random.default_rng(seed))
            hh_leaves = HierarchicalHistogram(1.0, d=64).fit(
                beta_values, rng=np.random.default_rng(100 + seed)
            )
            admm_err.append(wasserstein_distance(truth, admm))
            hh_err.append(wasserstein_distance(truth, norm_sub(hh_leaves)))
        assert np.mean(admm_err) <= np.mean(hh_err) * 1.5  # at least comparable

    def test_accuracy(self, beta_values, rng):
        est = HHADMM(2.0, d=64)
        out = est.fit(beta_values, rng=rng)
        truth = true_histogram(beta_values, 64)
        assert wasserstein_distance(truth, out) < 0.02

    def test_preserves_spike(self, rng):
        """A large point mass survives ADMM post-processing — the property
        that makes HH-ADMM win on the income dataset."""
        gen = np.random.default_rng(42)
        spike = np.full(30_000, 0.5)
        body = gen.random(30_000)
        values = np.concatenate([spike, body])
        est = HHADMM(2.0, d=64).fit(values, rng=rng)
        spike_bucket = int(0.5 * 64)
        assert est[spike_bucket] > 0.2  # true mass is ~0.51
