"""Tests for the budget-splitting HH variant and the paper's §4.2 claim."""

import numpy as np
import pytest

from repro.hierarchy.hh import (
    HierarchicalHistogram,
    collect_tree_estimates_budget_split,
)
from repro.hierarchy.tree import TreeLayout
from tests.conftest import true_histogram


class TestBudgetSplitCollection:
    def test_shapes(self, rng):
        t = TreeLayout(16, 4)
        est, weights = collect_tree_estimates_budget_split(
            t, 1.0, rng.integers(0, 16, 5000), rng=rng
        )
        assert est.shape == (t.total_nodes,)
        assert est[0] == 1.0
        assert (weights > 0).all()

    def test_unbiased(self, rng):
        t = TreeLayout(16, 4)
        truth = np.random.default_rng(1).dirichlet(np.ones(16))
        leaves = rng.choice(16, size=150_000, p=truth)
        est, _ = collect_tree_estimates_budget_split(t, 2.0, leaves, rng=rng)
        np.testing.assert_allclose(est[t.level_slice(2)], truth, atol=0.05)

    def test_rejects_bad_leaves(self, rng):
        t = TreeLayout(16, 4)
        with pytest.raises(ValueError):
            collect_tree_estimates_budget_split(t, 1.0, np.array([-1]), rng=rng)


class TestSplitComparison:
    def test_estimator_accepts_split_argument(self, beta_values, rng):
        hh = HierarchicalHistogram(1.0, d=64, split="budget")
        leaves = hh.fit(beta_values, rng=rng)
        assert leaves.sum() == pytest.approx(1.0, abs=1e-6)

    def test_rejects_unknown_split(self):
        with pytest.raises(ValueError, match="split"):
            HierarchicalHistogram(1.0, d=64, split="time")

    def test_population_split_beats_budget_split(self, beta_values):
        """Paper Section 4.2: under LDP it is better to divide the
        population than the privacy budget."""
        truth = true_histogram(beta_values, 64)
        pop_err, bud_err = [], []
        for seed in range(4):
            pop = HierarchicalHistogram(1.0, d=64, split="population").fit(
                beta_values, rng=np.random.default_rng(seed)
            )
            bud = HierarchicalHistogram(1.0, d=64, split="budget").fit(
                beta_values, rng=np.random.default_rng(100 + seed)
            )
            pop_err.append(np.abs(pop - truth).sum())
            bud_err.append(np.abs(bud - truth).sum())
        assert np.mean(pop_err) < np.mean(bud_err)
