"""Unit and statistical tests for HaarHRR."""

import numpy as np
import pytest

from repro.hierarchy.haar import HaarHRR
from tests.conftest import true_histogram


class TestConstruction:
    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            HaarHRR(1.0, d=48)

    def test_height(self):
        assert HaarHRR(1.0, d=64).height == 6

    def test_query_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            HaarHRR(1.0, d=8).range_query(0.0, 1.0)


class TestSynthesis:
    def test_leaves_sum_to_one(self, beta_values, rng):
        haar = HaarHRR(1.0, d=64)
        leaves = haar.fit(beta_values, rng=rng)
        assert leaves.sum() == pytest.approx(1.0, abs=1e-9)

    def test_detail_layer_count(self, beta_values, rng):
        haar = HaarHRR(1.0, d=64)
        haar.fit(beta_values, rng=rng)
        assert len(haar.details_) == 6
        assert [d.size for d in haar.details_] == [32, 16, 8, 4, 2, 1]

    def test_exact_synthesis_with_true_details(self):
        """The inverse cascade must invert the Haar analysis exactly."""
        d = 16
        truth = np.random.default_rng(0).dirichlet(np.ones(d))
        haar = HaarHRR(1.0, d=d)
        # Build exact details: delta_t[k] = left-half mass - right-half mass.
        details = []
        level = truth.copy()
        for _ in range(haar.height):
            pairs = level.reshape(-1, 2)
            details.append(pairs[:, 0] - pairs[:, 1])
            level = pairs.sum(axis=1)
        haar.details_ = details
        current = np.array([1.0])
        for t in range(haar.height, 0, -1):
            delta = details[t - 1]
            expanded = np.empty(current.size * 2)
            expanded[0::2] = (current + delta) / 2
            expanded[1::2] = (current - delta) / 2
            current = expanded
        np.testing.assert_allclose(current, truth, atol=1e-12)

    def test_estimates_unbiased(self, beta_values):
        """Average over repetitions approaches the true histogram."""
        d = 16
        truth = true_histogram(beta_values, d)
        acc = np.zeros(d)
        reps = 12
        for seed in range(reps):
            haar = HaarHRR(2.0, d=d)
            acc += haar.fit(beta_values, rng=np.random.default_rng(seed))
        np.testing.assert_allclose(acc / reps, truth, atol=0.02)

    def test_reasonable_accuracy(self, beta_values, rng):
        haar = HaarHRR(2.0, d=64)
        leaves = haar.fit(beta_values, rng=rng)
        truth = true_histogram(beta_values, 64)
        # 20k users split over 6 layers at eps=2: per-leaf MAE ~ 0.01.
        assert np.abs(leaves - truth).mean() < 0.02


class TestHaarRangeQuery:
    def test_full_domain(self, beta_values, rng):
        haar = HaarHRR(1.0, d=64)
        haar.fit(beta_values, rng=rng)
        assert haar.range_query(0.0, 1.0) == pytest.approx(1.0, abs=1e-9)

    def test_accuracy(self, beta_values, rng):
        haar = HaarHRR(2.0, d=64)
        haar.fit(beta_values, rng=rng)
        truth = true_histogram(beta_values, 64)
        assert haar.range_query(0.25, 0.75) == pytest.approx(
            truth[16:48].sum(), abs=0.05
        )

    def test_rejects_bad_range(self, beta_values, rng):
        haar = HaarHRR(1.0, d=8)
        haar.fit(beta_values, rng=rng)
        with pytest.raises(ValueError):
            haar.range_query(0.9, 0.1)
