"""Unit and property tests for consistency projections."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.hierarchy.constrained import NullspaceProjector, consistency_projection
from repro.hierarchy.tree import TreeLayout


def consistent_vector(tree, leaves):
    """Build the exact node vector implied by leaf frequencies."""
    vec = np.empty(tree.total_nodes)
    current = np.asarray(leaves, dtype=float)
    for level in range(tree.height, -1, -1):
        vec[tree.level_slice(level)] = current
        if level:
            current = current.reshape(-1, tree.branching).sum(axis=1)
    return vec


class TestNullspaceProjector:
    def test_consistent_vector_unchanged(self):
        t = TreeLayout(16, 4)
        vec = consistent_vector(t, np.random.default_rng(0).dirichlet(np.ones(16)))
        proj = NullspaceProjector(t)
        np.testing.assert_allclose(proj.project(vec), vec, atol=1e-12)

    def test_output_is_consistent(self, rng):
        t = TreeLayout(16, 4)
        proj = NullspaceProjector(t)
        out = proj.project(rng.normal(size=t.total_nodes))
        np.testing.assert_allclose(t.constraint_matrix() @ out, 0.0, atol=1e-10)

    def test_idempotent(self, rng):
        t = TreeLayout(64, 4)
        proj = NullspaceProjector(t)
        once = proj.project(rng.normal(size=t.total_nodes))
        np.testing.assert_allclose(proj.project(once), once, atol=1e-10)

    def test_is_orthogonal_projection(self, rng):
        """v - P(v) must be orthogonal to the constraint nullspace."""
        t = TreeLayout(16, 4)
        proj = NullspaceProjector(t)
        v = rng.normal(size=t.total_nodes)
        residual = v - proj.project(v)
        for _ in range(5):
            w = proj.project(rng.normal(size=t.total_nodes))
            assert abs(residual @ w) < 1e-8

    def test_rejects_wrong_shape(self):
        t = TreeLayout(16, 4)
        with pytest.raises(ValueError):
            NullspaceProjector(t).project(np.zeros(3))


class TestConsistencyProjection:
    def test_consistent_input_fixed_point(self):
        t = TreeLayout(16, 4)
        vec = consistent_vector(t, np.random.default_rng(1).dirichlet(np.ones(16)))
        out = consistency_projection(t, vec)
        np.testing.assert_allclose(out, vec, atol=1e-10)

    def test_output_satisfies_constraints(self, rng):
        t = TreeLayout(64, 4)
        out = consistency_projection(t, rng.normal(size=t.total_nodes))
        np.testing.assert_allclose(t.constraint_matrix() @ out, 0.0, atol=1e-9)
        assert out[0] == pytest.approx(1.0)

    def test_without_root_constraint(self, rng):
        t = TreeLayout(16, 4)
        v = rng.normal(size=t.total_nodes)
        out = consistency_projection(t, v, fix_root=False)
        np.testing.assert_allclose(t.constraint_matrix() @ out, 0.0, atol=1e-9)

    def test_weights_pull_toward_reliable_levels(self, rng):
        """With enormous leaf weight (and no root pin), consistency is
        restored by moving the *parents* onto the leaf sums, not vice
        versa."""
        t = TreeLayout(16, 4)
        v = rng.normal(size=t.total_nodes) + 1.0
        weights = np.ones(t.total_nodes)
        weights[t.level_slice(2)] = 1e9  # leaves: very reliable
        out = consistency_projection(t, v, weights=weights, fix_root=False)
        leaf_slice = t.level_slice(2)
        leaf_shift = np.abs(out[leaf_slice] - v[leaf_slice]).max()
        parent_shift = np.abs(out[t.level_slice(1)] - v[t.level_slice(1)]).max()
        assert leaf_shift < 1e-6
        assert parent_shift > 0.1

    def test_variance_reduction_on_unbiased_noise(self):
        """Averaging across levels reduces leaf MSE versus raw estimates —
        the reason hierarchical methods help at all."""
        t = TreeLayout(64, 4)
        truth = consistent_vector(
            t, np.random.default_rng(3).dirichlet(np.ones(64))
        )
        gen = np.random.default_rng(4)
        raw_mse, proj_mse = 0.0, 0.0
        for _ in range(20):
            noisy = truth + gen.normal(0, 0.02, truth.size)
            noisy[0] = 1.0
            out = consistency_projection(t, noisy)
            leaf = t.level_slice(t.height)
            raw_mse += ((noisy[leaf] - truth[leaf]) ** 2).sum()
            proj_mse += ((out[leaf] - truth[leaf]) ** 2).sum()
        assert proj_mse < raw_mse

    def test_rejects_bad_weights(self, rng):
        t = TreeLayout(16, 4)
        v = rng.normal(size=t.total_nodes)
        with pytest.raises(ValueError):
            consistency_projection(t, v, weights=np.zeros(t.total_nodes))

    @given(
        hnp.arrays(
            np.float64, 21, elements=st.floats(-2.0, 2.0)  # TreeLayout(16,4) size
        )
    )
    def test_projection_never_increases_distance_to_consistent_points(self, v):
        """Projections are non-expansive toward any feasible point."""
        t = TreeLayout(16, 4)
        feasible = consistent_vector(t, np.full(16, 1 / 16))
        out = consistency_projection(t, v, fix_root=True)
        assert np.linalg.norm(out - feasible) <= np.linalg.norm(v - feasible) + 1e-8
