"""Unit and statistical tests for the Hierarchical Histogram estimator."""

import numpy as np
import pytest

from repro.hierarchy.hh import HierarchicalHistogram, collect_tree_estimates
from repro.hierarchy.tree import TreeLayout
from tests.conftest import true_histogram


class TestCollectTreeEstimates:
    def test_shapes_and_root(self, rng):
        t = TreeLayout(16, 4)
        leaves = rng.integers(0, 16, 10_000)
        est, weights = collect_tree_estimates(t, 1.0, leaves, rng=rng)
        assert est.shape == (t.total_nodes,)
        assert est[0] == 1.0
        assert (weights > 0).all()

    def test_level_estimates_unbiased(self, rng):
        t = TreeLayout(16, 4)
        truth = np.random.default_rng(1).dirichlet(np.ones(16))
        leaves = rng.choice(16, size=200_000, p=truth)
        est, _ = collect_tree_estimates(t, 2.0, leaves, rng=rng)
        level1_truth = truth.reshape(4, 4).sum(axis=1)
        np.testing.assert_allclose(est[t.level_slice(1)], level1_truth, atol=0.05)
        np.testing.assert_allclose(est[t.level_slice(2)], truth, atol=0.05)

    def test_rejects_bad_leaves(self, rng):
        t = TreeLayout(16, 4)
        with pytest.raises(ValueError):
            collect_tree_estimates(t, 1.0, np.array([16]), rng=rng)

    def test_handles_tiny_population(self, rng):
        """With fewer users than levels, empty levels get negligible weight
        instead of crashing."""
        t = TreeLayout(64, 4)
        est, weights = collect_tree_estimates(t, 1.0, np.array([0, 1]), rng=rng)
        assert np.isfinite(est).all()
        assert np.isfinite(weights).all()


class TestHierarchicalHistogram:
    def test_leaf_estimates_sum_to_one(self, beta_values, rng):
        hh = HierarchicalHistogram(1.0, d=64, branching=4)
        leaves = hh.fit(beta_values, rng=rng)
        assert leaves.sum() == pytest.approx(1.0, abs=1e-6)

    def test_consistency_after_fit(self, beta_values, rng):
        hh = HierarchicalHistogram(1.0, d=64, branching=4)
        hh.fit(beta_values, rng=rng)
        residual = hh.tree.constraint_matrix() @ hh.node_estimates_
        np.testing.assert_allclose(residual, 0.0, atol=1e-8)

    def test_reasonable_accuracy(self, beta_values, rng):
        hh = HierarchicalHistogram(2.0, d=64, branching=4)
        leaves = hh.fit(beta_values, rng=rng)
        truth = true_histogram(beta_values, 64)
        assert np.abs(leaves - truth).mean() < 0.01

    def test_node_estimate_accessor(self, beta_values, rng):
        hh = HierarchicalHistogram(1.0, d=64, branching=4)
        hh.fit(beta_values, rng=rng)
        assert hh.node_estimate(0, 0) == pytest.approx(1.0)

    def test_query_before_fit_raises(self):
        hh = HierarchicalHistogram(1.0, d=64)
        with pytest.raises(RuntimeError):
            hh.range_query(0.0, 0.5)
        with pytest.raises(RuntimeError):
            hh.node_estimate(0, 0)


class TestHHRangeQuery:
    @pytest.fixture
    def fitted(self, beta_values):
        hh = HierarchicalHistogram(2.0, d=64, branching=4)
        hh.fit(beta_values, rng=np.random.default_rng(3))
        return hh

    def test_full_domain_is_one(self, fitted):
        assert fitted.range_query(0.0, 1.0) == pytest.approx(1.0, abs=1e-6)

    def test_matches_leaf_sum_when_consistent(self, fitted):
        """After constrained inference, the decomposition equals leaf sums."""
        leaves = fitted.node_estimates_[fitted.tree.level_slice(fitted.tree.height)]
        est = fitted.range_query(0.25, 0.75)
        assert est == pytest.approx(leaves[16:48].sum(), abs=1e-8)

    def test_partial_buckets_interpolated(self, fitted):
        leaves = fitted.node_estimates_[fitted.tree.level_slice(fitted.tree.height)]
        # Window strictly inside bucket 0: proportional share of that leaf.
        est = fitted.range_query(0.0, 1 / 128)
        assert est == pytest.approx(leaves[0] / 2, abs=1e-10)

    def test_accuracy_against_truth(self, fitted, beta_values):
        truth = true_histogram(beta_values, 64)
        for lo, hi in [(0.1, 0.3), (0.5, 0.9), (0.0, 0.45)]:
            true_mass = truth[int(lo * 64) : int(hi * 64)].sum()
            assert fitted.range_query(lo, hi) == pytest.approx(true_mass, abs=0.05)

    def test_batch_matches_singles(self, fitted):
        windows = [(0.1, 0.3), (0.5, 0.9), (0.0, 1.0)]
        batch = fitted.range_queries(windows)
        singles = [fitted.range_query(lo, hi) for lo, hi in windows]
        np.testing.assert_allclose(batch, singles)

    def test_n_reports_tracks_ingestion(self, beta_values):
        hh = HierarchicalHistogram(1.0, d=64, branching=4)
        assert hh.n_reports == 0
        hh.partial_fit(beta_values[:1000], rng=np.random.default_rng(0))
        assert hh.n_reports == 1000
        hh.partial_fit(beta_values[1000:1500], rng=np.random.default_rng(1))
        assert hh.n_reports == 1500

    def test_rejects_bad_range(self, fitted):
        with pytest.raises(ValueError):
            fitted.range_query(0.5, 0.4)
