"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io import read_histogram_csv, write_values
from repro.metrics.distances import wasserstein_distance
from tests.conftest import true_histogram


@pytest.fixture()
def values_file(tmp_path, beta_values):
    return write_values(beta_values[:10_000], tmp_path / "values.txt")


class TestPrivatizeAggregate:
    def test_full_round(self, tmp_path, values_file, beta_values):
        reports = tmp_path / "reports.jsonl"
        hist = tmp_path / "hist.csv"
        assert main([
            "privatize", "--epsilon", "1.0", "--round-id", "r1",
            "--input", str(values_file), "--output", str(reports), "--seed", "3",
        ]) == 0
        assert main([
            "aggregate", "--epsilon", "1.0", "--round-id", "r1", "--d", "64",
            "--input", str(reports), "--output", str(hist),
        ]) == 0
        estimate = read_histogram_csv(hist)
        truth = true_histogram(beta_values[:10_000], 64)
        assert estimate.sum() == pytest.approx(1.0, abs=1e-6)
        assert wasserstein_distance(truth, estimate) < 0.05

    def test_round_mismatch_fails_cleanly(self, tmp_path, values_file, capsys):
        reports = tmp_path / "reports.jsonl"
        main([
            "privatize", "--epsilon", "1.0", "--round-id", "a",
            "--input", str(values_file), "--output", str(reports),
        ])
        code = main([
            "aggregate", "--epsilon", "1.0", "--round-id", "b", "--d", "64",
            "--input", str(reports), "--output", str(tmp_path / "h.csv"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestEstimate:
    @pytest.mark.parametrize(
        "method", ["sw-ems", "cfo-16", "sw-discrete-ems", "hh-admm"]
    )
    def test_methods(self, tmp_path, values_file, method):
        out = tmp_path / "hist.csv"
        assert main([
            "estimate", "--epsilon", "1.0", "--d", "64", "--method", method,
            "--input", str(values_file), "--output", str(out), "--seed", "1",
        ]) == 0
        assert read_histogram_csv(out).sum() == pytest.approx(1.0, abs=1e-6)

    def test_leaf_signed_method(self, tmp_path, values_file):
        out = tmp_path / "hist.csv"
        assert main([
            "estimate", "--epsilon", "1.0", "--d", "64", "--method", "haar-hrr",
            "--input", str(values_file), "--output", str(out), "--seed", "1",
        ]) == 0
        assert read_histogram_csv(out).shape == (64,)

    def test_frequency_method(self, tmp_path, values_file):
        out = tmp_path / "freq.csv"
        assert main([
            "estimate", "--epsilon", "1.0", "--d", "64", "--method", "grr",
            "--input", str(values_file), "--output", str(out), "--seed", "1",
        ]) == 0
        assert read_histogram_csv(out).shape == (64,)

    def test_scalar_method(self, tmp_path, values_file, capsys):
        out = tmp_path / "mean.csv"
        assert main([
            "estimate", "--epsilon", "1.0", "--method", "pm",
            "--input", str(values_file), "--output", str(out), "--seed", "1",
        ]) == 0
        assert "estimated mean" in capsys.readouterr().out
        text = out.read_text()
        assert text.startswith("statistic,value")
        mean = float(text.splitlines()[1].split(",")[1])
        assert 0.6 < mean < 0.8  # Beta(5, 2) has mean 5/7

    def test_list_methods(self, capsys):
        assert main(["estimate", "--list-methods"]) == 0
        out = capsys.readouterr().out
        for name in ("sw-ems", "hh-admm", "cfo-16", "sr", "grr"):
            assert name in out
        assert "distribution" in out and "scalar" in out

    def test_missing_required_flags(self, capsys):
        assert main(["estimate", "--method", "sw-ems"]) == 2
        assert "required" in capsys.readouterr().err

    def test_unknown_method_fails(self, tmp_path, values_file):
        code = main([
            "estimate", "--epsilon", "1.0", "--method", "magic",
            "--input", str(values_file), "--output", str(tmp_path / "h.csv"),
        ])
        assert code == 2

    def test_missing_input_fails(self, tmp_path):
        code = main([
            "estimate", "--epsilon", "1.0",
            "--input", str(tmp_path / "nope.txt"), "--output", str(tmp_path / "h.csv"),
        ])
        assert code == 2


class TestAuditAndPlan:
    @pytest.mark.parametrize("shape", ["square", "triangle", "cosine", "epanechnikov"])
    def test_audit_passes(self, shape, capsys):
        assert main(["audit", "--shape", shape, "--epsilon", "1.0"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_plan_output(self, capsys):
        assert main(["plan", "--epsilon", "1.0", "--target-std", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "users" in out


class TestAnalyze:
    @pytest.fixture()
    def plan_file(self, tmp_path):
        import json

        plan = {
            "epsilon": 1.0,
            "attributes": [
                {"name": "income", "low": 0.0, "high": 100000.0, "d": 64},
                {"name": "age", "low": 18.0, "high": 90.0, "d": 64},
            ],
            "tasks": [
                {"task": "mean", "attribute": "income"},
                {"task": "quantiles", "attribute": "income", "quantiles": [0.5]},
                {"task": "range_queries", "attribute": "age", "windows": [[18, 40]]},
            ],
        }
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(plan))
        return path

    @pytest.fixture()
    def table_file(self, tmp_path, rng):
        path = tmp_path / "survey.csv"
        incomes = rng.gamma(4.0, 9000.0, 5000).clip(0, 100000)
        ages = rng.normal(45.0, 14.0, 5000).clip(18, 90)
        lines = ["income,age"] + [
            f"{i:.2f},{a:.2f}" for i, a in zip(incomes, ages, strict=True)
        ]
        path.write_text("\n".join(lines) + "\n")
        return path

    def test_explain_prints_planner_choices(self, plan_file, capsys):
        assert main(["analyze", "--plan", str(plan_file), "--explain"]) == 0
        out = capsys.readouterr().out
        assert "income: sw-ems" in out
        assert "age: hh-admm" in out
        assert "per-user epsilon" in out

    def test_analyze_end_to_end(self, plan_file, table_file, tmp_path, capsys):
        import json

        out_path = tmp_path / "results.json"
        code = main([
            "analyze", "--plan", str(plan_file), "--input", str(table_file),
            "--output", str(out_path), "--seed", "5", "--shards", "2",
        ])
        assert code == 0
        assert "budget OK" in capsys.readouterr().out
        results = json.loads(out_path.read_text())
        assert {r["task"] for r in results["results"]} == {
            "mean", "quantiles", "range_queries",
        }
        assert results["per_user_epsilon"] == 1.0

    def test_missing_io_flags(self, plan_file, capsys):
        assert main(["analyze", "--plan", str(plan_file)]) == 2
        assert "required" in capsys.readouterr().err

    def test_bad_plan_file_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "plan.json"
        bad.write_text('{"epsilon": 1.0, "attributes": [], "tasks": []}')
        assert main(["analyze", "--plan", str(bad), "--explain"]) == 2
        assert "error" in capsys.readouterr().err

    def test_typoed_plan_key_fails_cleanly(self, tmp_path, capsys):
        """Misnamed keys exit 2 with a message, not a TypeError traceback."""
        import json

        bad = tmp_path / "plan.json"
        bad.write_text(json.dumps({
            "epsilon": 1.0,
            "attributes": [{"name": "x", "lo": 0.0}],
            "tasks": [{"task": "mean", "attribute": "x"}],
        }))
        assert main(["analyze", "--plan", str(bad), "--explain"]) == 2
        err = capsys.readouterr().err
        assert "error" in err and "AttributeSpec" in err

    def test_missing_plan_key_fails_cleanly(self, tmp_path, capsys):
        bad = tmp_path / "plan.json"
        bad.write_text('{"attributes": [], "tasks": []}')
        assert main(["analyze", "--plan", str(bad), "--explain"]) == 2
        assert "missing required key" in capsys.readouterr().err


class TestServeWorkflow:
    """pack / unpack / collect: the protocol-v2 serving subcommands."""

    @pytest.mark.parametrize("fmt", ["frame", "jsonl"])
    @pytest.mark.parametrize("method", ["sw-ems", "olh", "sw-discrete-ems"])
    def test_pack_collect_round_trip(self, tmp_path, values_file, method, fmt):
        feed = tmp_path / "feed"
        out = tmp_path / "est.csv"
        assert main([
            "pack", "--method", method, "--epsilon", "1.0", "--d", "64",
            "--round-id", "r1", "--format", fmt,
            "--input", str(values_file), "--output", str(feed), "--seed", "3",
        ]) == 0
        assert main([
            "collect", "--method", method, "--epsilon", "1.0", "--d", "64",
            "--round-id", "r1", "--input", str(feed), "--output", str(out),
        ]) == 0
        assert read_histogram_csv(out).shape == (64,)

    def test_collect_merges_shard_feeds(self, tmp_path, values_file, capsys):
        feeds = []
        for i, fmt in enumerate(("frame", "jsonl")):
            feed = tmp_path / f"shard{i}"
            main([
                "pack", "--epsilon", "1.0", "--d", "64", "--round-id", "r",
                "--format", fmt, "--input", str(values_file),
                "--output", str(feed), "--seed", str(i),
            ])
            feeds.append(str(feed))
        out = tmp_path / "est.csv"
        assert main([
            "collect", "--epsilon", "1.0", "--d", "64", "--round-id", "r",
            "--input", *feeds, "--output", str(out),
        ]) == 0
        assert "20000 reports across 2 feed(s)" in capsys.readouterr().out

    def test_unpack_inspects_and_converts(self, tmp_path, values_file, capsys):
        feed = tmp_path / "feed.rpf"
        main([
            "pack", "--method", "grr", "--epsilon", "1.0", "--d", "32",
            "--round-id", "r9", "--format", "frame",
            "--input", str(values_file), "--output", str(feed), "--seed", "1",
        ])
        jsonl = tmp_path / "feed.jsonl"
        assert main([
            "unpack", "--input", str(feed), "--format", "jsonl",
            "--output", str(jsonl),
        ]) == 0
        out = capsys.readouterr().out
        assert "round 'r9'" in out and "category payloads" in out
        first = jsonl.read_text().splitlines()[0]
        assert '"mech":"category"' in first
        # The converted feed still collects.
        est = tmp_path / "est.csv"
        assert main([
            "collect", "--method", "grr", "--epsilon", "1.0", "--d", "32",
            "--round-id", "r9", "--input", str(jsonl), "--output", str(est),
        ]) == 0

    def test_collect_scalar_method(self, tmp_path, values_file):
        feed = tmp_path / "feed"
        out = tmp_path / "mean.csv"
        main([
            "pack", "--method", "pm", "--epsilon", "1.0", "--round-id", "r",
            "--input", str(values_file), "--output", str(feed), "--seed", "2",
        ])
        assert main([
            "collect", "--method", "pm", "--epsilon", "1.0", "--round-id", "r",
            "--input", str(feed), "--output", str(out),
        ]) == 0
        mean = float(out.read_text().splitlines()[1].split(",")[1])
        assert 0.6 < mean < 0.8

    def test_collect_wrong_round_fails_cleanly(self, tmp_path, values_file, capsys):
        feed = tmp_path / "feed"
        main([
            "pack", "--epsilon", "1.0", "--round-id", "a",
            "--input", str(values_file), "--output", str(feed),
        ])
        assert main([
            "collect", "--epsilon", "1.0", "--round-id", "b",
            "--input", str(feed), "--output", str(tmp_path / "h.csv"),
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_collect_codec_mismatch_fails_cleanly(self, tmp_path, values_file, capsys):
        feed = tmp_path / "feed"
        main([
            "pack", "--method", "olh", "--epsilon", "1.0", "--d", "32",
            "--round-id", "r", "--input", str(values_file), "--output", str(feed),
        ])
        assert main([
            "collect", "--method", "sw-ems", "--epsilon", "1.0", "--d", "32",
            "--round-id", "r", "--input", str(feed),
            "--output", str(tmp_path / "h.csv"),
        ]) == 2
        assert "payloads" in capsys.readouterr().err

    def test_pack_marginals_rejected(self, tmp_path, values_file, capsys):
        assert main([
            "pack", "--method", "sw-multi", "--epsilon", "1.0",
            "--round-id", "r", "--input", str(values_file),
            "--output", str(tmp_path / "f"),
        ]) == 2
        assert "matrix" in capsys.readouterr().err

    def test_collect_corrupted_feed_fails_cleanly(self, tmp_path, capsys):
        feed = tmp_path / "feed.jsonl"
        feed.write_text(
            '{"round_id":"r","mech":"category","payload":null,"version":2}\n'
        )
        assert main([
            "collect", "--method", "grr", "--epsilon", "1.0", "--d", "16",
            "--round-id", "r", "--input", str(feed),
            "--output", str(tmp_path / "h.csv"),
        ]) == 2
        assert "error:" in capsys.readouterr().err
