"""End-to-end tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.io import read_histogram_csv, write_values
from repro.metrics.distances import wasserstein_distance
from tests.conftest import true_histogram


@pytest.fixture()
def values_file(tmp_path, beta_values):
    return write_values(beta_values[:10_000], tmp_path / "values.txt")


class TestPrivatizeAggregate:
    def test_full_round(self, tmp_path, values_file, beta_values):
        reports = tmp_path / "reports.jsonl"
        hist = tmp_path / "hist.csv"
        assert main([
            "privatize", "--epsilon", "1.0", "--round-id", "r1",
            "--input", str(values_file), "--output", str(reports), "--seed", "3",
        ]) == 0
        assert main([
            "aggregate", "--epsilon", "1.0", "--round-id", "r1", "--d", "64",
            "--input", str(reports), "--output", str(hist),
        ]) == 0
        estimate = read_histogram_csv(hist)
        truth = true_histogram(beta_values[:10_000], 64)
        assert estimate.sum() == pytest.approx(1.0, abs=1e-6)
        assert wasserstein_distance(truth, estimate) < 0.05

    def test_round_mismatch_fails_cleanly(self, tmp_path, values_file, capsys):
        reports = tmp_path / "reports.jsonl"
        main([
            "privatize", "--epsilon", "1.0", "--round-id", "a",
            "--input", str(values_file), "--output", str(reports),
        ])
        code = main([
            "aggregate", "--epsilon", "1.0", "--round-id", "b", "--d", "64",
            "--input", str(reports), "--output", str(tmp_path / "h.csv"),
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err


class TestEstimate:
    @pytest.mark.parametrize(
        "method", ["sw-ems", "cfo-16", "sw-discrete-ems", "hh-admm"]
    )
    def test_methods(self, tmp_path, values_file, method):
        out = tmp_path / "hist.csv"
        assert main([
            "estimate", "--epsilon", "1.0", "--d", "64", "--method", method,
            "--input", str(values_file), "--output", str(out), "--seed", "1",
        ]) == 0
        assert read_histogram_csv(out).sum() == pytest.approx(1.0, abs=1e-6)

    def test_leaf_signed_method(self, tmp_path, values_file):
        out = tmp_path / "hist.csv"
        assert main([
            "estimate", "--epsilon", "1.0", "--d", "64", "--method", "haar-hrr",
            "--input", str(values_file), "--output", str(out), "--seed", "1",
        ]) == 0
        assert read_histogram_csv(out).shape == (64,)

    def test_frequency_method(self, tmp_path, values_file):
        out = tmp_path / "freq.csv"
        assert main([
            "estimate", "--epsilon", "1.0", "--d", "64", "--method", "grr",
            "--input", str(values_file), "--output", str(out), "--seed", "1",
        ]) == 0
        assert read_histogram_csv(out).shape == (64,)

    def test_scalar_method(self, tmp_path, values_file, capsys):
        out = tmp_path / "mean.csv"
        assert main([
            "estimate", "--epsilon", "1.0", "--method", "pm",
            "--input", str(values_file), "--output", str(out), "--seed", "1",
        ]) == 0
        assert "estimated mean" in capsys.readouterr().out
        text = out.read_text()
        assert text.startswith("statistic,value")
        mean = float(text.splitlines()[1].split(",")[1])
        assert 0.6 < mean < 0.8  # Beta(5, 2) has mean 5/7

    def test_list_methods(self, capsys):
        assert main(["estimate", "--list-methods"]) == 0
        out = capsys.readouterr().out
        for name in ("sw-ems", "hh-admm", "cfo-16", "sr", "grr"):
            assert name in out
        assert "distribution" in out and "scalar" in out

    def test_missing_required_flags(self, capsys):
        assert main(["estimate", "--method", "sw-ems"]) == 2
        assert "required" in capsys.readouterr().err

    def test_unknown_method_fails(self, tmp_path, values_file):
        code = main([
            "estimate", "--epsilon", "1.0", "--method", "magic",
            "--input", str(values_file), "--output", str(tmp_path / "h.csv"),
        ])
        assert code == 2

    def test_missing_input_fails(self, tmp_path):
        code = main([
            "estimate", "--epsilon", "1.0",
            "--input", str(tmp_path / "nope.txt"), "--output", str(tmp_path / "h.csv"),
        ])
        assert code == 2


class TestAuditAndPlan:
    @pytest.mark.parametrize("shape", ["square", "triangle", "cosine", "epanechnikov"])
    def test_audit_passes(self, shape, capsys):
        assert main(["audit", "--shape", shape, "--epsilon", "1.0"]) == 0
        assert "OK" in capsys.readouterr().out

    def test_plan_output(self, capsys):
        assert main(["plan", "--epsilon", "1.0", "--target-std", "0.002"]) == 0
        out = capsys.readouterr().out
        assert "users" in out
