"""Tests for file I/O helpers."""

import numpy as np
import pytest

from repro.core.pipeline import SWEstimator
from repro.io import (
    load_estimator_config,
    read_histogram_csv,
    read_table,
    read_values,
    save_estimator_config,
    write_histogram_csv,
    write_values,
)


class TestValuesIO:
    def test_roundtrip(self, tmp_path, rng):
        values = rng.random(100)
        path = write_values(values, tmp_path / "v.txt")
        np.testing.assert_allclose(read_values(path), values, rtol=1e-10)

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "v.txt"
        path.write_text("# header\n0.5\n\n0.25\n")
        np.testing.assert_allclose(read_values(path), [0.5, 0.25])

    def test_bad_line_reported_with_location(self, tmp_path):
        path = tmp_path / "v.txt"
        path.write_text("0.5\nbanana\n")
        with pytest.raises(ValueError, match=":2:"):
            read_values(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "v.txt"
        path.write_text("# nothing\n")
        with pytest.raises(ValueError, match="no values"):
            read_values(path)


class TestHistogramIO:
    def test_roundtrip(self, tmp_path, rng):
        hist = rng.dirichlet(np.ones(16))
        path = write_histogram_csv(hist, tmp_path / "h.csv")
        np.testing.assert_allclose(read_histogram_csv(path), hist, rtol=1e-9)

    def test_edges_cover_unit_interval(self, tmp_path):
        path = write_histogram_csv(np.array([0.5, 0.5]), tmp_path / "h.csv")
        text = path.read_text().splitlines()
        assert text[1].startswith("0,0,0.5,")
        assert text[2].startswith("1,0.5,1,")

    def test_empty_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            write_histogram_csv(np.array([]), tmp_path / "h.csv")


class TestTableIO:
    def test_reads_columns_by_header(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("income,age\n100.5,30\n200.25,45\n")
        table = read_table(path)
        assert set(table) == {"income", "age"}
        np.testing.assert_allclose(table["income"], [100.5, 200.25])
        np.testing.assert_allclose(table["age"], [30.0, 45.0])

    def test_blank_rows_skipped(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("x\n1.0\n\n2.0\n")
        np.testing.assert_allclose(read_table(path)["x"], [1.0, 2.0])

    def test_utf8_bom_tolerated(self, tmp_path):
        """Excel's default UTF-8 export prefixes a BOM; the first column
        name must not absorb it."""
        path = tmp_path / "t.csv"
        path.write_bytes(b"\xef\xbb\xbfincome,age\n1.0,2.0\n")
        assert set(read_table(path)) == {"income", "age"}

    def test_ragged_row_reported_with_location(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n1.0\n")
        with pytest.raises(ValueError, match=":2"):
            read_table(path)

    def test_non_numeric_cell_reported(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a\nhello\n")
        with pytest.raises(ValueError, match="not a number"):
            read_table(path)

    def test_duplicate_header_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,a\n1,2\n")
        with pytest.raises(ValueError, match="duplicate"):
            read_table(path)

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            read_table(path)

    def test_header_only_rejected(self, tmp_path):
        path = tmp_path / "t.csv"
        path.write_text("a,b\n")
        with pytest.raises(ValueError, match="no data rows"):
            read_table(path)


class TestEstimatorConfig:
    def test_roundtrip_preserves_parameters(self, tmp_path):
        original = SWEstimator(1.5, d=128, b=0.2, postprocess="em", max_iter=500)
        path = save_estimator_config(original, tmp_path / "est.json")
        restored = load_estimator_config(path)
        assert restored.epsilon == original.epsilon
        assert restored.mechanism.b == original.mechanism.b
        assert restored.d == original.d
        assert restored.postprocess == original.postprocess
        assert restored.max_iter == original.max_iter

    def test_restored_estimator_identical_matrix(self, tmp_path):
        original = SWEstimator(1.0, d=32)
        path = save_estimator_config(original, tmp_path / "est.json")
        restored = load_estimator_config(path)
        np.testing.assert_array_equal(
            original.transition_matrix, restored.transition_matrix
        )

    def test_wrong_type_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"type": "Other"}')
        with pytest.raises(ValueError, match="not an SWEstimator"):
            load_estimator_config(path)
