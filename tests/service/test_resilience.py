"""Durable journals, checkpoints, idempotent ingest, and crash recovery.

The headline property: for seeded fault plans crashing the service at
*any* journal/commit boundary, a recovered collector's estimates are
**bit-identical** (JSON-equal) to a fault-free run's, and client retries
through idempotency keys are exactly-once — duplicates and lost acks
change nothing.
"""

import json

import pytest

from repro.service import (
    DedupLedger,
    Fault,
    FaultPlan,
    IdempotencyConflictError,
    IngestReceipt,
    InjectedFault,
    MetaJournal,
    ServiceConfig,
    ShardJournal,
    ShardedCollector,
    load_checkpoint,
    write_checkpoint,
)
from repro.service.loadgen import synthesize_frames
from repro.tasks import AnalysisPlan, AttributeSpec, Distribution, Mean

# Injected crashes deliberately kill threads mid-flight; pytest's
# thread-exception relay is expected noise for this suite.
pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)

CRASH_SITES = (
    "journal.append.before",
    "journal.append.after",
    "journal.truncate",
    "meta.commit.before",
    "meta.commit.after",
)


def make_plan() -> AnalysisPlan:
    return AnalysisPlan(
        epsilon=2.0,
        attributes=(
            AttributeSpec("age", low=0.0, high=100.0, d=16),
            AttributeSpec("income", low=0.0, high=1e5, d=16),
        ),
        tasks=(Distribution("age"), Mean("income")),
    )


def keyed_uploads(plan, round_id="r1", n_users=1500, seed=7, batch=300):
    """``(key, frame)`` uploads — one stable idempotency key per frame."""
    frames = synthesize_frames(
        plan, round_id, n_users, batch_size=batch, rng=seed
    )
    return [
        (f"up-{round_id}-{index}", frame)
        for index, (frame, _n) in enumerate(frames)
    ]


def estimates_of(collector, round_id="r1") -> str:
    collector.flush()
    return json.dumps(collector.estimate(round_id)["estimates"], sort_keys=True)


def config_for(tmp_path, *, faults=None, **kwargs) -> ServiceConfig:
    return ServiceConfig(
        plan=make_plan(),
        n_shards=3,
        journal_dir=tmp_path / "wal",
        faults=faults,
        **kwargs,
    )


def fault_free_baseline(tmp_path, uploads, round_id="r1") -> str:
    with ShardedCollector(config_for(tmp_path / "baseline")) as collector:
        for key, frame in uploads:
            collector.submit(frame, round_id, key=key)
        return estimates_of(collector, round_id)


# ----------------------------------------------------------------------
# journal primitives
# ----------------------------------------------------------------------


class TestShardJournal:
    def test_append_replay_roundtrip(self, tmp_path):
        journal = ShardJournal(tmp_path / "s.journal")
        records = [(f"k{i}", bytes([i]) * (10 + i)) for i in range(5)]
        for key, segment in records:
            journal.append(key, segment)
        got = [(r.key, bytes(r.segment)) for r in journal.replay()]
        assert got == records
        assert journal.good_offset() == journal.size
        journal.close()

    def test_torn_tail_is_detected_and_truncated(self, tmp_path):
        journal = ShardJournal(tmp_path / "s.journal")
        journal.append("good", b"A" * 32)
        good = journal.size
        journal.append("torn", b"B" * 32)
        journal.close()
        # Tear the second record: keep only part of it on disk.
        raw = (tmp_path / "s.journal").read_bytes()
        (tmp_path / "s.journal").write_bytes(raw[: good + 11])
        journal = ShardJournal(tmp_path / "s.journal")
        assert [r.key for r in journal.replay()] == ["good"]
        assert journal.good_offset() == good
        journal.truncate_to(good)
        assert journal.size == good
        journal.close()

    def test_corrupt_record_stops_replay(self, tmp_path):
        journal = ShardJournal(tmp_path / "s.journal")
        journal.append("one", b"A" * 32)
        good = journal.size
        journal.append("two", b"B" * 32)
        journal.close()
        raw = bytearray((tmp_path / "s.journal").read_bytes())
        raw[-5] ^= 0xFF  # flip a byte inside the second record's payload
        (tmp_path / "s.journal").write_bytes(bytes(raw))
        journal = ShardJournal(tmp_path / "s.journal")
        assert [r.key for r in journal.replay()] == ["one"]
        assert journal.good_offset() == good
        journal.close()

    def test_replay_from_offset(self, tmp_path):
        journal = ShardJournal(tmp_path / "s.journal")
        offset = journal.append("one", b"A" * 8)
        journal.append("two", b"B" * 8)
        assert [r.key for r in journal.replay(offset)] == ["two"]
        journal.close()

    def test_closed_journal_rejects_appends(self, tmp_path):
        journal = ShardJournal(tmp_path / "s.journal")
        journal.close()
        with pytest.raises(RuntimeError, match="closed"):
            journal.append("k", b"x")

    def test_bad_fsync_policy_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="fsync"):
            ShardJournal(tmp_path / "s.journal", fsync="sometimes")


class TestMetaJournal:
    def test_commit_advance_roundtrip(self, tmp_path):
        meta = MetaJournal(tmp_path / "meta.log")
        receipt = IngestReceipt("r1", "up-1", "abcd", 300)
        meta.commit(receipt)
        meta.advance("r1", [10, 20, 30])
        records = meta.read()
        assert [r["kind"] for r in records] == ["commit", "advance"]
        assert records[0]["key"] == "up-1"
        assert records[0]["accepted"] == 300
        assert records[1]["offsets"] == [10, 20, 30]
        meta.close()

    def test_torn_line_stops_read(self, tmp_path):
        meta = MetaJournal(tmp_path / "meta.log")
        meta.commit(IngestReceipt("r1", "up-1", "abcd", 10))
        meta.close()
        with open(tmp_path / "meta.log", "ab") as f:
            f.write(b"deadbeef {not json")  # no digest match, no newline
        meta = MetaJournal(tmp_path / "meta.log")
        assert [r["key"] for r in meta.read()] == ["up-1"]
        meta.close()

    def test_rewrite_replaces_contents(self, tmp_path):
        meta = MetaJournal(tmp_path / "meta.log")
        meta.commit(IngestReceipt("r1", "a", "d1", 1))
        meta.commit(IngestReceipt("r1", "b", "d2", 2))
        records = meta.read()
        meta.rewrite(records[-1:])
        assert [r["key"] for r in meta.read()] == ["b"]
        meta.close()


class TestDedupLedger:
    def test_lookup_miss_then_replay_hit(self):
        ledger = DedupLedger(capacity=4)
        assert ledger.lookup("k", "d") is None
        ledger.record(IngestReceipt("r1", "k", "d", 42))
        replay = ledger.lookup("k", "d")
        assert replay is not None
        assert replay.replayed is True
        assert replay.accepted == 42

    def test_key_reuse_with_different_digest_conflicts(self):
        ledger = DedupLedger(capacity=4)
        ledger.record(IngestReceipt("r1", "k", "d1", 42))
        with pytest.raises(IdempotencyConflictError):
            ledger.lookup("k", "d2")

    def test_lru_eviction_is_bounded(self):
        ledger = DedupLedger(capacity=2)
        for i in range(5):
            ledger.record(IngestReceipt("r1", f"k{i}", f"d{i}", i))
        assert len(ledger) == 2
        assert ledger.lookup("k0", "d0") is None  # evicted
        assert ledger.lookup("k4", "d4") is not None


class TestCheckpointFiles:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "shard-0.ckpt"
        write_checkpoint(
            path,
            journal_offset=128,
            states={"r1": {"age": {"n": 10}}},
            counters={"blocks": 3, "reports": 10, "errors": 0},
        )
        ckpt = load_checkpoint(path)
        assert ckpt is not None
        assert ckpt["journal_offset"] == 128
        assert ckpt["states"] == {"r1": {"age": {"n": 10}}}
        assert ckpt["counters"]["reports"] == 10

    def test_missing_or_corrupt_means_full_replay(self, tmp_path):
        path = tmp_path / "shard-0.ckpt"
        assert load_checkpoint(path) is None
        write_checkpoint(path, journal_offset=0, states={})
        raw = bytearray(path.read_bytes())
        raw[len(raw) // 2] ^= 0xFF
        path.write_bytes(bytes(raw))
        assert load_checkpoint(path) is None


# ----------------------------------------------------------------------
# restart + recovery
# ----------------------------------------------------------------------


class TestRestartBitIdentity:
    def test_plain_restart_is_bit_identical(self, tmp_path):
        uploads = keyed_uploads(make_plan())
        config = config_for(tmp_path)
        with ShardedCollector(config) as collector:
            for key, frame in uploads:
                collector.submit(frame, "r1", key=key)
            before = estimates_of(collector)
        with ShardedCollector(config) as recovered:
            stats = recovered.stats()
            assert stats["uploads_accepted"] == len(uploads)
            assert stats["journal"]["recovered_records"] >= len(uploads)
            assert estimates_of(recovered) == before

    def test_replay_acks_survive_restart(self, tmp_path):
        uploads = keyed_uploads(make_plan())
        config = config_for(tmp_path)
        with ShardedCollector(config) as collector:
            receipts = [
                collector.submit(frame, "r1", key=key)
                for key, frame in uploads
            ]
            assert all(not r.replayed for r in receipts)
            before = estimates_of(collector)
        with ShardedCollector(config) as recovered:
            for key, frame in uploads:  # the client retries everything
                receipt = recovered.submit(frame, "r1", key=key)
                assert receipt.replayed is True
            assert recovered.stats()["uploads_accepted"] == len(uploads)
            assert estimates_of(recovered) == before

    def test_checkpoint_bounds_the_replay_tail(self, tmp_path):
        uploads = keyed_uploads(make_plan())
        config = config_for(tmp_path, checkpoint_every=2, dedup_capacity=64)
        with ShardedCollector(config) as collector:
            for key, frame in uploads:
                collector.submit(frame, "r1", key=key)
            before = estimates_of(collector)
        with ShardedCollector(config) as recovered:
            # Most of the journal is absorbed by checkpoints: only the
            # post-checkpoint tail replays.
            tail = recovered.stats()["journal"]["recovered_records"]
            assert tail < len(uploads)
            assert estimates_of(recovered) == before

    def test_duplicates_change_nothing(self, tmp_path):
        """Identical results with and without client retries."""
        uploads = keyed_uploads(make_plan())
        baseline = fault_free_baseline(tmp_path, uploads)
        with ShardedCollector(config_for(tmp_path / "dup")) as collector:
            for key, frame in uploads:
                first = collector.submit(frame, "r1", key=key)
                again = collector.submit(frame, "r1", key=key)
                assert first.replayed is False
                assert again.replayed is True
                assert again.accepted == first.accepted
            assert collector.stats()["uploads_accepted"] == len(uploads)
            assert collector.stats()["dedup"]["replays_served"] == len(uploads)
            assert estimates_of(collector) == baseline


class TestCrashRecoveryProperty:
    """Crash at every journal/commit boundary; recovery is bit-identical."""

    @pytest.mark.parametrize("site", CRASH_SITES)
    @pytest.mark.parametrize("at", [1, 3])
    def test_single_crash_at_boundary(self, tmp_path, site, at):
        uploads = keyed_uploads(make_plan())
        baseline = fault_free_baseline(tmp_path, uploads)
        config = config_for(
            tmp_path / "crash", faults=FaultPlan([Fault(site, at=at)])
        )
        collector = ShardedCollector(config)
        crashes = replays = 0
        try:
            for key, frame in uploads:
                while True:
                    try:
                        receipt = collector.submit(frame, "r1", key=key)
                    except InjectedFault:
                        # Simulated process death: abandon the collector
                        # and restart from checkpoint + journal.
                        crashes += 1
                        collector.close()
                        collector = ShardedCollector(config)
                        continue
                    replays += receipt.replayed
                    break
            assert crashes == 1
            assert estimates_of(collector) == baseline
            assert collector.stats()["uploads_accepted"] == len(uploads)
            if site == "meta.commit.after":
                # Committed before the crash: the retry is a replay ack.
                assert replays == 1
            else:
                # Rolled back: the retry re-ingests, nothing is doubled.
                assert replays == 0
        finally:
            collector.close()

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_seeded_random_crash_storm(self, tmp_path, seed):
        uploads = keyed_uploads(make_plan())
        baseline = fault_free_baseline(tmp_path, uploads)
        faults = FaultPlan(
            [Fault(site, prob=0.12, times=None) for site in CRASH_SITES],
            seed=seed,
        )
        config = config_for(tmp_path / "storm", faults=faults)
        collector = ShardedCollector(config)
        crashes = 0
        try:
            for key, frame in uploads:
                for _ in range(200):
                    try:
                        collector.submit(frame, "r1", key=key)
                        break
                    except InjectedFault:
                        crashes += 1
                        collector.close()
                        collector = ShardedCollector(config)
                else:  # pragma: no cover - fault storm never let one through
                    pytest.fail("upload never survived the fault storm")
            assert crashes > 0  # the storm actually stormed
            assert estimates_of(collector) == baseline
            assert collector.stats()["uploads_accepted"] == len(uploads)
        finally:
            collector.close()


class TestWindowedRecovery:
    def test_windowed_restart_replays_ticks_bit_identically(self, tmp_path):
        plan = make_plan()
        config = config_for(tmp_path, window=2)
        with ShardedCollector(config) as collector:
            for round_id in ("r1", "r2", "r3"):
                for key, frame in keyed_uploads(
                    plan, round_id=round_id, n_users=600, seed=4
                ):
                    collector.submit(frame, round_id, key=key)
                collector.advance_window(round_id)
            before = json.dumps(collector.window_estimate(), sort_keys=True)
        with ShardedCollector(config) as recovered:
            after = json.dumps(recovered.window_estimate(), sort_keys=True)
            assert after == before
            # The advance-once guard survives recovery too.
            with pytest.raises(ValueError, match="already advanced"):
                recovered.advance_window("r3")
