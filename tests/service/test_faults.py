"""Fault-injection harness, retry policy, and graceful degradation."""

import numpy as np
import pytest

from repro.service import (
    Fault,
    FaultPlan,
    InjectedCrash,
    InjectedFault,
    RetryPolicy,
    ServiceConfig,
    ServiceOverloadError,
    ShardedCollector,
)
from repro.service.loadgen import synthesize_frames
from repro.service.sharding import HashRing
from repro.tasks import AnalysisPlan, AttributeSpec, Distribution, Mean

# Injected crashes deliberately kill shard drain threads the way SIGKILL
# would; pytest's thread-exception relay is expected noise here.
pytestmark = pytest.mark.filterwarnings(
    "ignore::pytest.PytestUnhandledThreadExceptionWarning"
)


def make_plan() -> AnalysisPlan:
    return AnalysisPlan(
        epsilon=2.0,
        attributes=(
            AttributeSpec("age", low=0.0, high=100.0, d=16),
            AttributeSpec("income", low=0.0, high=1e5, d=16),
        ),
        tasks=(Distribution("age"), Mean("income")),
    )


def feed_frames(plan, n_users=1200, round_id="r1", seed=7, batch=300):
    return list(
        synthesize_frames(plan, round_id, n_users, batch_size=batch, rng=seed)
    )


class TestFaultValidation:
    def test_unknown_site_rejected(self):
        with pytest.raises(ValueError, match="unknown fault site"):
            Fault("journal.append.sideways", at=1)

    def test_exactly_one_trigger_required(self):
        with pytest.raises(ValueError, match="exactly one"):
            Fault("shard.fold")
        with pytest.raises(ValueError, match="exactly one"):
            Fault("shard.fold", at=1, every=2)

    def test_bounds_checked(self):
        with pytest.raises(ValueError):
            Fault("shard.fold", at=0)
        with pytest.raises(ValueError):
            Fault("shard.fold", prob=1.5)
        with pytest.raises(ValueError):
            Fault("shard.fold", at=1, times=0)
        with pytest.raises(ValueError):
            Fault("http.delay", at=1, delay=-0.1)

    def test_plan_rejects_non_faults(self):
        with pytest.raises(TypeError):
            FaultPlan(["shard.fold"])


class TestFaultPlanDeterminism:
    def test_at_fires_exactly_once_on_the_nth_hit(self):
        plan = FaultPlan([Fault("shard.fold", at=3)])
        fired = [plan.fires("shard.fold") for _ in range(6)]
        assert fired == [False, False, True, False, False, False]
        assert plan.fired == (("shard.fold", 3),)
        assert plan.hits() == {"shard.fold": 6}

    def test_every_with_times_budget(self):
        plan = FaultPlan([Fault("http.drop", every=2, times=2)])
        fired = [plan.fires("http.drop") for _ in range(8)]
        assert fired == [False, True, False, True, False, False, False, False]

    def test_prob_is_a_pure_function_of_seed_site_hit(self):
        def run(seed):
            plan = FaultPlan([Fault("shard.fold", prob=0.3, times=None)], seed=seed)
            return [plan.fires("shard.fold") for _ in range(64)]

        assert run(42) == run(42)
        assert run(42) != run(43)  # astronomically unlikely to collide
        assert any(run(42))
        assert not all(run(42))

    def test_sites_count_independently(self):
        plan = FaultPlan([Fault("shard.fold", at=1)])
        assert not plan.fires("journal.append.before")
        assert plan.fires("shard.fold")
        assert plan.hits() == {"journal.append.before": 1, "shard.fold": 1}

    def test_crash_raises_injected_crash(self):
        plan = FaultPlan([Fault("shard.fold", at=1)])
        with pytest.raises(InjectedCrash) as info:
            plan.crash("shard.fold")
        assert info.value.site == "shard.fold"
        assert info.value.hit == 1

    def test_injected_crash_punches_through_except_exception(self):
        caught = None
        try:
            try:
                raise InjectedCrash("shard.fold", 1)
            except Exception:  # the service's error accounting
                caught = "exception"
        except InjectedFault:
            caught = "fault"
        assert caught == "fault"

    def test_delay_and_truncation_helpers(self):
        plan = FaultPlan(
            [
                Fault("http.delay", at=1, delay=0.25),
                Fault("journal.truncate", at=1, keep_bytes=10),
                Fault("journal.truncate", at=2),
            ]
        )
        assert plan.delay_for("http.delay") == 0.25
        assert plan.delay_for("http.delay") == 0.0
        assert plan.truncation("journal.truncate", 100) == 10
        assert plan.truncation("journal.truncate", 100) == 50  # default: half
        assert plan.truncation("journal.truncate", 100) is None


class TestRetryPolicy:
    def test_schedule_is_deterministic_and_capped(self):
        policy = RetryPolicy(attempts=10, base_delay=0.01, max_delay=0.5, seed=1)
        schedule = policy.schedule()
        assert schedule == policy.schedule()
        assert len(schedule) == 9
        assert all(0.0 < d <= 0.5 for d in schedule)
        # Exponential growth up to the cap (jitter only shrinks).
        assert schedule[-1] > schedule[0]

    def test_jitter_shrinks_never_grows(self):
        policy = RetryPolicy(attempts=5, base_delay=0.1, max_delay=10.0, jitter=0.5)
        for attempt in range(4):
            raw = 0.1 * 2.0**attempt
            assert 0.5 * raw <= policy.delay(attempt) <= raw

    def test_retry_after_wins_only_when_longer(self):
        policy = RetryPolicy(base_delay=0.01, jitter=0.0)
        assert policy.delay(0, retry_after=5.0) == 5.0
        assert policy.delay(0, retry_after=0.001) == pytest.approx(0.01)

    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=1.0, max_delay=0.5)
        with pytest.raises(ValueError):
            RetryPolicy().delay(-1)


class TestRingExclusion:
    def test_excluded_owner_routed_around(self):
        ring = HashRing(4)
        owner = ring.shard_for("r1", "age")
        rerouted = ring.shard_for("r1", "age", exclude=frozenset({owner}))
        assert rerouted != owner
        # Unrelated keys keep their owners: exclusion is surgical.
        other = ring.shard_for("r1", "income")
        if other != owner:
            assert (
                ring.shard_for("r1", "income", exclude=frozenset({owner}))
                == other
            )

    def test_all_excluded_raises(self):
        ring = HashRing(2)
        with pytest.raises(ValueError, match="excluded"):
            ring.shard_for("r1", "age", exclude=frozenset({0, 1}))


class TestGracefulDegradation:
    def config(self, tmp_path, faults=None, n_shards=3):
        return ServiceConfig(
            plan=make_plan(),
            n_shards=n_shards,
            journal_dir=tmp_path / "wal",
            faults=faults,
        )

    def test_dead_shard_is_routed_around_and_coverage_reported(self, tmp_path):
        faults = FaultPlan([Fault("shard.fold", at=1)])
        with ShardedCollector(self.config(tmp_path, faults)) as collector:
            frames = feed_frames(make_plan())
            collector.submit(frames[0][0], "r1")
            collector.flush()  # first fold kills one worker
            dead = [i for i, s in enumerate(collector.shards) if not s.alive]
            assert len(dead) == 1
            # Ingest keeps working: traffic routes around the corpse.
            for frame, _n in frames[1:]:
                collector.submit(frame, "r1")
            collector.flush()
            assert collector.stats()["shards_dead"] == [dead[0]]
            estimates = collector.estimate("r1")
            assert estimates["degraded"] is True
            assert estimates["shards_dead"] == [dead[0]]
            for cov in estimates["coverage"].values():
                assert cov["n_reports_seen"] >= 0
                assert isinstance(cov["home_alive"], bool)

    def test_revive_replays_journal_and_clears_degradation(self, tmp_path):
        faults = FaultPlan([Fault("shard.fold", at=1)])
        with ShardedCollector(self.config(tmp_path, faults)) as collector:
            frames = feed_frames(make_plan())
            total = 0
            for frame, n in frames:
                collector.submit(frame, "r1")
                total += n
            collector.flush()
            dead = [i for i, s in enumerate(collector.shards) if not s.alive]
            assert len(dead) == 1
            outcome = collector.revive(dead[0])
            assert outcome["shard"] == dead[0]
            assert outcome["replayed_records"] >= 1
            collector.flush()
            estimates = collector.estimate("r1")
            assert estimates["degraded"] is False
            assert estimates["shards_dead"] == []
            # Every accepted report is visible again, including the block
            # the dying worker dropped mid-fold.
            seen = sum(
                cov["n_reports_seen"]
                for cov in estimates["coverage"].values()
            )
            assert seen == total

    def test_revive_rejects_live_shard(self, tmp_path):
        with ShardedCollector(self.config(tmp_path)) as collector:
            with pytest.raises(ValueError, match="alive"):
                collector.revive(0)
            with pytest.raises(ValueError, match="shard"):
                collector.revive(99)

    def test_all_shards_dead_is_overload(self, tmp_path):
        faults = FaultPlan([Fault("shard.fold", every=1, times=None)])
        with ShardedCollector(
            self.config(tmp_path, faults, n_shards=2)
        ) as collector:
            frames = feed_frames(make_plan(), n_users=2400, batch=200)
            with pytest.raises(ServiceOverloadError):
                for frame, _n in frames:
                    collector.submit(frame, "r1")
                    collector.flush()

    def test_fault_free_plan_changes_nothing(self, tmp_path):
        """A wired-but-silent FaultPlan must not perturb results."""
        frames = feed_frames(make_plan())
        with ShardedCollector(self.config(tmp_path / "a")) as collector:
            for frame, _n in frames:
                collector.submit(frame, "r1")
            collector.flush()
            baseline = collector.estimate("r1")
        quiet = FaultPlan([Fault("shard.fold", prob=0.0, times=None)])
        with ShardedCollector(self.config(tmp_path / "b", quiet)) as collector:
            for frame, _n in frames:
                collector.submit(frame, "r1")
            collector.flush()
            injected = collector.estimate("r1")
        assert baseline["estimates"] == injected["estimates"]
