"""Load harness: synthesis, percentile math, and a real end-to-end run."""

import math

import numpy as np
import pytest

from repro.protocol import iter_frame_blocks
from repro.service import LoadReport, ServiceConfig, run_load, start_local_service
from repro.service.loadgen import percentile, percentiles, synthesize_frames
from repro.tasks import AnalysisPlan, AttributeSpec, Distribution, Mean


@pytest.fixture(scope="module")
def plan() -> AnalysisPlan:
    return AnalysisPlan(
        epsilon=2.0,
        attributes=(
            AttributeSpec("age", low=0.0, high=100.0, d=32),
            AttributeSpec("income", low=0.0, high=1e5, d=32),
        ),
        tasks=(Distribution("age"), Mean("income")),
    )


class TestSynthesizeFrames:
    def test_batches_cover_all_users(self, plan):
        sizes = [n for _, n in synthesize_frames(plan, "r", 2500, batch_size=1000, rng=0)]
        assert sizes == [1000, 1000, 500]

    def test_frames_are_valid_rpf2_for_the_round(self, plan):
        frame, n = next(synthesize_frames(plan, "load-1", 500, batch_size=500, rng=0))
        blocks = list(iter_frame_blocks(frame, expected_round="load-1"))
        assert sum(block.n for block in blocks) == n == 500
        assert {block.attr for block in blocks} <= {"age", "income"}

    def test_deterministic_under_a_seed(self, plan):
        a = [f for f, _ in synthesize_frames(plan, "r", 600, batch_size=200, rng=21)]
        b = [f for f, _ in synthesize_frames(plan, "r", 600, batch_size=200, rng=21)]
        assert a == b

    def test_caller_supplied_data_is_used(self, plan):
        data = {
            "age": np.full(100, 50.0),
            "income": np.full(100, 2e4),
        }
        frames = list(
            synthesize_frames(plan, "r", 100, batch_size=40, rng=1, data=data)
        )
        assert [n for _, n in frames] == [40, 40, 20]

    def test_invalid_sizes_rejected(self, plan):
        with pytest.raises(ValueError, match="n_users"):
            list(synthesize_frames(plan, "r", 0, rng=0))
        with pytest.raises(ValueError, match="batch_size"):
            list(synthesize_frames(plan, "r", 10, batch_size=0, rng=0))

    def test_generation_is_lazy(self, plan):
        frames = synthesize_frames(plan, "r", 10_000_000, batch_size=1000, rng=0)
        frame, n = next(frames)  # a 10M-user feed must not pre-materialize
        assert n == 1000
        frames.close()


class TestPercentile:
    def test_empty_is_nan(self):
        assert math.isnan(percentile([], 50))

    def test_single_sample(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_rank_selection(self):
        samples = list(range(1, 101))
        assert percentile(samples, 0) == 1
        assert percentile(samples, 50) == 51  # nearest rank on 100 samples
        assert percentile(samples, 100) == 100

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0


class TestLoadReport:
    def test_to_dict_shape(self):
        report = LoadReport(
            n_users=100,
            n_uploads=10,
            n_reports_accepted=100,
            elapsed_seconds=2.0,
            latencies_ms=[1.0, 2.0, 3.0],
            n_throttled=1,
        )
        payload = report.to_dict()
        assert payload["reports_per_second"] == 50.0
        assert set(payload["latency_ms"]) == {"p50", "p95", "p99"}
        assert payload["n_throttled"] == 1
        assert payload["n_errors"] == 0

    def test_zero_elapsed_rate_is_nan(self):
        report = LoadReport(
            n_users=0, n_uploads=0, n_reports_accepted=0, elapsed_seconds=0.0
        )
        assert math.isnan(report.reports_per_second)


class TestRunLoadEndToEnd:
    def test_load_run_accepts_every_report(self, plan):
        with start_local_service(
            ServiceConfig(plan=plan, n_shards=2, queue_depth=16)
        ) as handle:
            report = run_load(
                handle.host, handle.port, plan, "load-1", 5000,
                batch_size=500, concurrency=4, rng=17,
            )
            assert report.n_users == 5000
            assert report.n_reports_accepted == 5000
            assert report.n_errors == 0
            assert report.n_uploads == 10
            assert len(report.latencies_ms) >= report.n_uploads
            assert report.reports_per_second > 0
            result = handle.collector.estimate("load-1")
            assert sum(result["n_reports"].values()) == 5000
            assert result["errors"] == {}

    def test_backpressure_retries_keep_the_feed_exact(self, plan):
        """A tiny queue forces 429s; the harness retries until all land."""
        with start_local_service(
            ServiceConfig(plan=plan, n_shards=1, queue_depth=2)
        ) as handle:
            report = run_load(
                handle.host, handle.port, plan, "load-2", 4000,
                batch_size=100, concurrency=8, rng=23,
            )
            assert report.n_reports_accepted == 4000
            assert report.n_errors == 0
            handle.collector.flush()
            stats = handle.collector.stats()
            assert stats["shards"][0]["reports_ingested"] == 4000

    def test_feed_that_can_never_fit_is_rejected_not_retried(self, plan):
        """A frame needing more slots than queue_depth is a config error
        (400), not backpressure (429) — retrying would livelock."""
        from repro.service import ShardedCollector

        config = ServiceConfig(plan=plan, n_shards=1, queue_depth=1)
        frame, _ = next(synthesize_frames(plan, "r", 100, batch_size=100, rng=2))
        with ShardedCollector(config) as collector:
            with pytest.raises(ValueError, match="queue_depth"):
                collector.submit_feed(frame, "r")

    def test_invalid_concurrency_rejected(self, plan):
        with pytest.raises(ValueError, match="concurrency"):
            run_load("127.0.0.1", 1, plan, "r", 10, concurrency=0)


class TestPercentiles:
    def test_one_pass_matches_percentile(self):
        samples = [5.0, 1.0, 9.0, 3.0, 7.0]
        batch = percentiles(samples, (0, 50, 100))
        assert batch == [percentile(samples, q) for q in (0, 50, 100)]

    def test_empty_is_all_nan(self):
        values = percentiles([], (50, 95, 99))
        assert len(values) == 3
        assert all(math.isnan(v) for v in values)

    def test_accepts_any_iterable(self):
        assert percentiles((v for v in [2.0, 4.0]), (50,)) == [2.0]

    def test_nearest_rank_on_large_sample(self):
        samples = list(range(1, 1001))
        p50, p95, p99 = percentiles(samples, (50, 95, 99))
        assert abs(p50 - 500) <= 1
        assert abs(p95 - 950) <= 1
        assert abs(p99 - 990) <= 1
