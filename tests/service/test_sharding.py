"""Consistent-ring placement and exact merge-tree recombination."""

import numpy as np
import pytest

from repro.protocol import CollectionServer
from repro.service.sharding import HashRing, merge_tree, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("r1", "age") == stable_hash("r1", "age")

    def test_concatenation_cannot_collide(self):
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_distinct_keys_differ(self):
        assert stable_hash("r1", "age") != stable_hash("r1", "income")


class TestHashRing:
    def test_placement_is_stable_across_ring_instances(self):
        a = HashRing(4)
        b = HashRing(4)
        keys = [(f"round-{r}", f"attr-{i}") for r in range(5) for i in range(20)]
        assert [a.shard_for(*k) for k in keys] == [b.shard_for(*k) for k in keys]

    def test_every_shard_receives_keys(self):
        ring = HashRing(4)
        owners = {
            ring.shard_for("r", f"attr-{i}") for i in range(200)
        }
        assert owners == {0, 1, 2, 3}

    def test_spread_is_roughly_even(self):
        ring = HashRing(4)
        counts = np.zeros(4)
        for i in range(2000):
            counts[ring.shard_for("r", f"attr-{i}")] += 1
        # Consistent hashing with 64 vnodes: no shard should be starved or
        # hold a majority of a large key population.
        assert counts.min() > 200
        assert counts.max() < 1000

    def test_growing_the_ring_moves_only_some_keys(self):
        small, large = HashRing(3), HashRing(4)
        keys = [("r", f"attr-{i}") for i in range(1000)]
        moved = sum(
            small.shard_for(*k) != large.shard_for(*k) for k in keys
        )
        # Only keys claimed by the new shard's points move; with naive
        # modulo placement ~3/4 of keys would move.
        assert 0 < moved < 600

    def test_invalid_shapes_rejected(self):
        with pytest.raises(ValueError, match="n_shards"):
            HashRing(0)
        with pytest.raises(ValueError, match="vnodes"):
            HashRing(2, vnodes=0)


def make_shard_servers(n_shards, seed, mechanism="olh", n=600):
    """Identical-config shard servers plus one reference ingesting it all."""
    rng = np.random.default_rng(seed)
    reference = CollectionServer("r", mechanism, 1.0, 32)
    shards = [CollectionServer("r", mechanism, 1.0, 32) for _ in range(n_shards)]
    if mechanism == "olh":
        values = rng.integers(0, 32, size=n)
    else:
        values = rng.random(n)
    for index, shard in enumerate(shards):
        part = values[index::n_shards]
        reports = shard.privatize(part, rng=np.random.default_rng(index))
        shard.ingest_reports(reports)
        reference.ingest_reports(reports)
    return shards, reference


class TestMergeTree:
    def test_empty_input_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            merge_tree([])

    def test_single_server_passthrough(self):
        shards, _ = make_shard_servers(1, seed=0)
        assert merge_tree(shards) is shards[0]

    @pytest.mark.parametrize("n_shards", [2, 3])
    def test_fold_matches_sequential_merge_bit_exactly(self, n_shards):
        """Up to three shards the pairwise tree IS the sequential fold, so
        the float accumulator sums in the same order: bit-identical."""
        shards, reference = make_shard_servers(n_shards, seed=1)
        folded = merge_tree(shards)
        assert folded.n_reports == reference.n_reports
        np.testing.assert_array_equal(folded.estimate(), reference.estimate())

    @pytest.mark.parametrize("n_shards", [5, 8])
    def test_deep_fold_is_deterministic_and_exact_to_rounding(self, n_shards):
        """Deeper trees reassociate float sums: the answer is deterministic
        (same tree, same inputs -> same bits) and equal to the sequential
        merge to machine rounding."""
        shards, reference = make_shard_servers(n_shards, seed=2)
        again, _ = make_shard_servers(n_shards, seed=2)
        folded = merge_tree(shards)
        np.testing.assert_array_equal(
            folded.estimate(), merge_tree(again).estimate()
        )
        np.testing.assert_allclose(
            folded.estimate(), reference.estimate(), rtol=1e-12, atol=1e-14
        )

    @pytest.mark.parametrize("mechanism", ["olh", "sw-ems"])
    def test_fold_merges_whole_population(self, mechanism):
        shards, reference = make_shard_servers(4, seed=3, mechanism=mechanism)
        folded = merge_tree(shards)
        assert folded.n_reports == reference.n_reports == 600
        np.testing.assert_allclose(
            folded.estimate(), reference.estimate(), rtol=1e-9, atol=1e-12
        )

    def test_round_mismatch_surfaces(self, rng):
        a = CollectionServer("r1", "olh", 1.0, 16)
        b = CollectionServer("r2", "olh", 1.0, 16)
        for server in (a, b):
            server.ingest_reports(
                server.privatize(rng.integers(0, 16, size=50), rng=rng)
            )
        with pytest.raises(ValueError, match="round"):
            merge_tree([a, b])
