"""End-to-end HTTP tests over real sockets against a local service."""

import asyncio
import json

import numpy as np
import pytest

from repro.service import ServiceConfig, start_local_service
from repro.service.loadgen import http_request, synthesize_frames
from repro.tasks import (
    AnalysisPlan,
    AttributeSpec,
    Distribution,
    Mean,
    Session,
)


@pytest.fixture(scope="module")
def plan() -> AnalysisPlan:
    return AnalysisPlan(
        epsilon=2.0,
        attributes=(
            AttributeSpec("age", low=0.0, high=100.0, d=32),
            AttributeSpec("income", low=0.0, high=1e5, d=32),
        ),
        tasks=(Distribution("age"), Mean("income")),
    )


@pytest.fixture()
def service(plan):
    with start_local_service(ServiceConfig(plan=plan, n_shards=2)) as handle:
        yield handle


def request(handle, method, path, *, body=b"", content_type="application/x-repro-frame"):
    """One client request on a fresh connection, from the test thread."""

    async def go():
        status, payload, _reader, writer = await http_request(
            handle.host, handle.port, method, path,
            body=body, content_type=content_type,
        )
        writer.close()
        return status, json.loads(payload) if payload else {}

    return asyncio.run(go())


def upload_round(handle, plan, round_id="r1", n_users=1200, seed=3):
    total = 0
    for frame, n in synthesize_frames(
        plan, round_id, n_users, batch_size=400, rng=seed
    ):
        status, payload = request(
            handle, "POST", f"/v1/rounds/{round_id}/reports", body=frame
        )
        assert status == 202, payload
        total += payload["accepted"]
    return total


class TestIngestRoutes:
    def test_frame_upload_accepted(self, service, plan):
        assert upload_round(service, plan) == 1200

    def test_jsonl_upload_accepted(self, service, plan):
        session = Session(plan)
        reports = session.privatize(
            {
                "age": np.linspace(1.0, 99.0, 60),
                "income": np.linspace(50.0, 9e4, 60),
            },
            rng=np.random.default_rng(0),
        )
        feed = session.to_feed(reports, "r1", format="jsonl")
        status, payload = request(
            service, "POST", "/v1/rounds/r1/reports",
            body=feed.encode("utf-8"), content_type="application/jsonlines",
        )
        assert status == 202
        assert payload["accepted"] == 60

    def test_empty_body_is_400(self, service):
        status, payload = request(service, "POST", "/v1/rounds/r1/reports")
        assert status == 400
        assert "empty" in payload["error"]

    def test_garbage_frame_is_400(self, service):
        status, payload = request(
            service, "POST", "/v1/rounds/r1/reports", body=b"\x00\x01not a frame"
        )
        assert status == 400

    def test_round_mismatch_is_400(self, service, plan):
        frame, _ = next(synthesize_frames(plan, "r1", 50, batch_size=50, rng=1))
        status, payload = request(
            service, "POST", "/v1/rounds/other/reports", body=frame
        )
        assert status == 400
        assert "round" in payload["error"]

    def test_get_reports_is_405(self, service):
        status, _ = request(service, "GET", "/v1/rounds/r1/reports")
        assert status == 405

    def test_unknown_route_is_404(self, service):
        status, _ = request(service, "GET", "/v2/nope")
        assert status == 404
        status, _ = request(service, "POST", "/v1/rounds/r1/unknown", body=b"x")
        assert status == 404

    def test_oversized_body_is_413(self, plan):
        config = ServiceConfig(plan=plan, max_body_bytes=1024)
        with start_local_service(config) as handle:
            status, payload = request(
                handle, "POST", "/v1/rounds/r1/reports", body=b"x" * 2048
            )
            assert status == 413
            assert "upload limit" in payload["error"]


class TestEstimateRoute:
    def test_estimate_after_uploads(self, service, plan):
        upload_round(service, plan, n_users=1500)
        status, payload = request(service, "POST", "/v1/rounds/r1/estimate")
        assert status == 200
        assert payload["round"] == "r1"
        assert payload["errors"] == {}
        assert len(payload["estimates"]["age"]) == 32
        assert payload["report"] is not None
        assert sum(payload["n_reports"].values()) == 1500

    def test_estimate_matches_direct_collector(self, service, plan):
        upload_round(service, plan, n_users=800, seed=9)
        _, over_http = request(service, "GET", "/v1/rounds/r1/estimate")
        direct = service.collector.estimate("r1")
        assert over_http["estimates"] == direct["estimates"]

    def test_unknown_round_is_404(self, service):
        status, payload = request(service, "GET", "/v1/rounds/ghost/estimate")
        assert status == 404
        assert "ghost" in payload["error"]

    def test_wrong_method_is_405(self, service):
        status, _ = request(service, "PUT", "/v1/rounds/r1/estimate")
        assert status == 405


class TestObservabilityRoutes:
    def test_healthz(self, service, plan):
        status, payload = request(service, "GET", "/healthz")
        assert status == 200
        assert payload == {"status": "ok", "rounds": []}
        upload_round(service, plan, n_users=400)
        # A 202 means enqueued; rounds appear once a shard worker has
        # processed the submission, so drain before asserting.
        service.collector.flush()
        _, payload = request(service, "GET", "/healthz")
        assert payload["rounds"] == ["r1"]

    def test_statz_reflects_ingest(self, service, plan):
        upload_round(service, plan, n_users=1000)
        service.collector.flush()
        status, payload = request(service, "GET", "/statz")
        assert status == 200
        assert payload["n_shards"] == 2
        shards = payload["shards"]
        assert sum(s["reports_ingested"] for s in shards) == 1000
        assert all(s["ingest_errors"] == 0 for s in shards)
        request(service, "POST", "/v1/rounds/r1/estimate")
        _, payload = request(service, "GET", "/statz")
        assert payload["merges"] == 1
        assert payload["merge_ms_last"] >= 0.0

    def test_healthz_post_is_405(self, service):
        status, _ = request(service, "POST", "/healthz", body=b"{}")
        assert status == 405


class TestConnectionBehavior:
    def test_keep_alive_reuses_one_connection(self, service, plan):
        frames = list(synthesize_frames(plan, "r1", 300, batch_size=100, rng=5))

        async def go():
            reader = writer = None
            statuses = []
            for frame, _ in frames:
                status, _payload, reader, writer = await http_request(
                    service.host, service.port, "POST",
                    "/v1/rounds/r1/reports", body=frame,
                    reader=reader, writer=writer,
                )
                statuses.append(status)
            status, _payload, reader, writer = await http_request(
                service.host, service.port, "GET", "/healthz",
                reader=reader, writer=writer,
            )
            statuses.append(status)
            writer.close()
            return statuses

        assert asyncio.run(go()) == [202, 202, 202, 200]

    def test_malformed_request_line_is_400(self, service):
        async def go():
            reader, writer = await asyncio.open_connection(
                service.host, service.port
            )
            writer.write(b"NONSENSE\r\n\r\n")
            await writer.drain()
            line = await reader.readline()
            writer.close()
            return line

        assert b"400" in asyncio.run(go())


class TestBackpressureOverHttp:
    def test_overloaded_service_returns_429_with_retry_after(self, plan):
        config = ServiceConfig(plan=plan, n_shards=1, queue_depth=2)
        with start_local_service(config) as handle:
            frames = list(synthesize_frames(plan, "r1", 400, batch_size=50, rng=7))
            # Prime the round, then park the shard worker on the servers'
            # ingest locks so queued blocks stop draining.
            status, _ = request(
                handle, "POST", "/v1/rounds/r1/reports", body=frames[0][0]
            )
            assert status == 202
            handle.collector.flush()
            shard = handle.collector.shards[0]
            locks = [server._lock for server in shard._servers.values()]
            for lock in locks:
                lock.acquire()
            try:
                statuses = []
                for frame, _ in frames[1:]:
                    code, payload = request(
                        handle, "POST", "/v1/rounds/r1/reports", body=frame
                    )
                    statuses.append(code)
                    if code == 429:
                        assert "queue" in payload["error"]
                        break
                assert statuses[-1] == 429
            finally:
                for lock in locks:
                    lock.release()
            # Drained service accepts again and the round stays solvable.
            handle.collector.flush()
            status, _ = request(
                handle, "POST", "/v1/rounds/r1/reports", body=frames[-1][0]
            )
            assert status == 202
            status, payload = request(handle, "GET", "/v1/rounds/r1/estimate")
            assert status == 200
            assert payload["errors"] == {}


class TestBoundedMemoryOverHttp:
    def test_streamed_uploads_never_materialize_the_feed(self, plan):
        """Ingest-tier memory stays bounded while a feed much larger than
        the queue capacity streams through the HTTP front end."""
        import tracemalloc

        config = ServiceConfig(plan=plan, n_shards=2, queue_depth=4)
        with start_local_service(config) as handle:
            total_bytes = 0
            tracemalloc.start()
            tracemalloc.reset_peak()
            for frame, _ in synthesize_frames(
                plan, "r1", 400_000, batch_size=10_000, rng=11
            ):
                total_bytes += len(frame)
                while True:
                    status, _payload = request(
                        handle, "POST", "/v1/rounds/r1/reports", body=frame
                    )
                    if status == 202:
                        break
                    assert status == 429
                    handle.collector.flush()
            handle.collector.flush()
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert total_bytes > 3_000_000
            # A buffering server would hold the whole decoded feed; the
            # streaming path's peak stays under one full copy even counting
            # client-side frame synthesis.
            assert peak < total_bytes
            status, payload = request(handle, "GET", "/v1/rounds/r1/estimate")
            assert status == 200
            assert sum(payload["n_reports"].values()) == 400_000
