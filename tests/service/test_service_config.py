"""ServiceConfig validation and per-shard backend selection."""

import pytest

from repro.service import ServiceConfig
from repro.tasks import AnalysisPlan, AttributeSpec, Distribution, Mean


@pytest.fixture(scope="module")
def plan() -> AnalysisPlan:
    return AnalysisPlan(
        epsilon=2.0,
        attributes=(
            AttributeSpec("age", low=0.0, high=100.0, d=32),
            AttributeSpec("income", low=0.0, high=1e5, d=32),
        ),
        tasks=(Distribution("age"), Mean("income")),
    )


class TestServiceConfig:
    def test_defaults(self, plan):
        config = ServiceConfig(plan=plan)
        assert config.n_shards == 2
        assert config.queue_depth >= 1
        assert config.backend_spec(0) is None
        assert config.backend_spec(1) is None

    def test_planned_is_resolved_once_and_cached(self, plan):
        config = ServiceConfig(plan=plan)
        assert config.planned is config.planned
        assert set(config.planned.allocation) == {"age", "income"}

    def test_single_backend_spec_applies_to_every_shard(self, plan):
        config = ServiceConfig(plan=plan, n_shards=3, backends="threaded:2")
        assert [config.backend_spec(i) for i in range(3)] == ["threaded:2"] * 3

    def test_per_shard_backend_specs(self, plan):
        config = ServiceConfig(
            plan=plan, n_shards=2, backends=("numpy", "threaded:2")
        )
        assert config.backend_spec(0) == "numpy"
        assert config.backend_spec(1) == "threaded:2"

    def test_backend_list_length_must_match_shards(self, plan):
        with pytest.raises(ValueError, match="backends lists 1"):
            ServiceConfig(plan=plan, n_shards=2, backends=("numpy",))

    def test_backend_spec_bounds_checked(self, plan):
        config = ServiceConfig(plan=plan, n_shards=2)
        with pytest.raises(ValueError, match="shard must be"):
            config.backend_spec(2)

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"n_shards": 0}, "n_shards"),
            ({"queue_depth": 0}, "queue_depth"),
            ({"max_body_bytes": 0}, "max_body_bytes"),
        ],
    )
    def test_invalid_knobs_rejected(self, plan, kwargs, match):
        with pytest.raises(ValueError, match=match):
            ServiceConfig(plan=plan, **kwargs)

    def test_from_plan_file(self, plan, tmp_path):
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        config = ServiceConfig.from_plan_file(path, n_shards=4)
        assert config.plan.to_dict() == plan.to_dict()
        assert config.n_shards == 4
