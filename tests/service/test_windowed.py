"""Windowed (streaming) service mode: config, collector, and HTTP routes."""

import asyncio
import json

import pytest

from repro.service import ServiceConfig, ShardedCollector, start_local_service
from repro.service.loadgen import http_request, synthesize_frames
from repro.tasks import AnalysisPlan, AttributeSpec, Distribution


@pytest.fixture(scope="module")
def plan() -> AnalysisPlan:
    return AnalysisPlan(
        epsilon=2.0,
        attributes=(
            AttributeSpec("income", low=0.0, high=1e5, d=32),
            AttributeSpec("hours", low=0.0, high=120.0, d=32),
        ),
        tasks=(Distribution("income"), Distribution("hours")),
    )


def ingest_round(collector, plan, round_id, seed, n_users=600):
    for frame, _n in synthesize_frames(
        plan, round_id, n_users, batch_size=300, rng=seed
    ):
        collector.submit_feed(frame, round_id)
    collector.flush()


class TestWindowedConfig:
    def test_window_and_decay_are_exclusive(self, plan):
        with pytest.raises(ValueError, match="mutually exclusive"):
            ServiceConfig(plan=plan, window=4, decay=0.9)

    def test_window_bounds(self, plan):
        with pytest.raises(ValueError, match="window"):
            ServiceConfig(plan=plan, window=0)
        assert ServiceConfig(plan=plan, window=4).windowed

    def test_decay_bounds(self, plan):
        for bad in (0.0, 1.0, -0.2, 2.0):
            with pytest.raises(ValueError, match="decay"):
                ServiceConfig(plan=plan, decay=bad)
        assert ServiceConfig(plan=plan, decay=0.9).windowed

    def test_one_shot_by_default(self, plan):
        assert not ServiceConfig(plan=plan).windowed


class TestWindowedCollector:
    def test_one_shot_collector_rejects_window_calls(self, plan):
        collector = ShardedCollector(ServiceConfig(plan=plan, n_shards=1))
        try:
            with pytest.raises(RuntimeError, match="windowed"):
                collector.advance_window("r1")
            with pytest.raises(RuntimeError, match="windowed"):
                collector.window_estimate()
        finally:
            collector.close()

    def test_advance_then_estimate(self, plan):
        config = ServiceConfig(plan=plan, n_shards=2, window=3)
        collector = ShardedCollector(config)
        try:
            for i in range(4):
                round_id = f"r{i}"
                ingest_round(collector, plan, round_id, seed=i)
                result = collector.advance_window(round_id)
                assert result["round"] == round_id
                assert result["tick"] == i + 1
            estimate = collector.window_estimate()
            assert estimate["mode"] == "window"
            assert estimate["window"] == 3
            assert estimate["ticks"] == 4
            assert estimate["effective_rounds"] == 3
            assert set(estimate["estimates"]) == {"income", "hours"}
            assert len(estimate["estimates"]["income"]) == 32
            audit = estimate["audit"]
            assert audit["rounds"] == 3
            assert audit["per_window_epsilon"] == pytest.approx(
                3 * audit["per_round_epsilon"]
            )
            stats = collector.stats()
            assert stats["windowed"] is True
            assert stats["window_ticks"] == 4
        finally:
            collector.close()

    def test_warm_ticks_after_the_first(self, plan):
        config = ServiceConfig(plan=plan, n_shards=1, window=2)
        collector = ShardedCollector(config)
        try:
            ingest_round(collector, plan, "r0", seed=0)
            first = collector.advance_window("r0")
            ingest_round(collector, plan, "r1", seed=1)
            second = collector.advance_window("r1")
            attrs_first = first["attributes"]
            attrs_second = second["attributes"]
            assert not any(a["warm"] for a in attrs_first.values())
            assert all(a["warm"] for a in attrs_second.values())
        finally:
            collector.close()

    def test_double_advance_rejected(self, plan):
        config = ServiceConfig(plan=plan, n_shards=1, window=2)
        collector = ShardedCollector(config)
        try:
            ingest_round(collector, plan, "r0", seed=0)
            collector.advance_window("r0")
            with pytest.raises(ValueError, match="already advanced"):
                collector.advance_window("r0")
        finally:
            collector.close()

    def test_advance_unknown_round_rejected(self, plan):
        config = ServiceConfig(plan=plan, n_shards=1, window=2)
        collector = ShardedCollector(config)
        try:
            with pytest.raises(LookupError):
                collector.advance_window("never-seen")
        finally:
            collector.close()

    def test_estimate_before_first_advance_rejected(self, plan):
        config = ServiceConfig(plan=plan, n_shards=1, window=2)
        collector = ShardedCollector(config)
        try:
            with pytest.raises(LookupError, match="advance"):
                collector.window_estimate()
        finally:
            collector.close()


def request(handle, method, path, *, body=b""):
    async def go():
        status, payload, _reader, writer = await http_request(
            handle.host, handle.port, method, path, body=body
        )
        writer.close()
        return status, json.loads(payload) if payload else {}

    return asyncio.run(go())


class TestWindowedHttp:
    @pytest.fixture()
    def service(self, plan):
        config = ServiceConfig(plan=plan, n_shards=2, window=3)
        with start_local_service(config) as handle:
            yield handle

    def upload(self, handle, plan, round_id, seed):
        for frame, _n in synthesize_frames(
            plan, round_id, 400, batch_size=200, rng=seed
        ):
            status, payload = request(
                handle, "POST", f"/v1/rounds/{round_id}/reports", body=frame
            )
            assert status == 202, payload

    def test_advance_and_stream_estimate(self, service, plan):
        for i in range(2):
            round_id = f"r{i}"
            self.upload(service, plan, round_id, seed=i)
            status, payload = request(
                service, "POST", f"/v1/rounds/{round_id}/advance"
            )
            assert status == 200, payload
            assert payload["round"] == round_id
            assert payload["tick"] == i + 1
        status, payload = request(service, "GET", "/v1/stream/estimate")
        assert status == 200
        assert payload["mode"] == "window"
        assert set(payload["estimates"]) == {"income", "hours"}
        assert payload["audit"]["rounds"] == 3

    def test_double_advance_is_conflict(self, service, plan):
        self.upload(service, plan, "r0", seed=0)
        status, _ = request(service, "POST", "/v1/rounds/r0/advance")
        assert status == 200
        status, payload = request(service, "POST", "/v1/rounds/r0/advance")
        assert status == 409
        assert "already advanced" in payload["error"]

    def test_advance_unknown_round_is_404(self, service):
        status, _ = request(service, "POST", "/v1/rounds/ghost/advance")
        assert status == 404

    def test_stream_estimate_before_advance_is_404(self, service):
        status, _ = request(service, "GET", "/v1/stream/estimate")
        assert status == 404

    def test_advance_is_post_only(self, service):
        status, _ = request(service, "GET", "/v1/rounds/r0/advance")
        assert status == 405

    def test_stream_estimate_is_get_only(self, service):
        status, _ = request(service, "POST", "/v1/stream/estimate")
        assert status == 405

    def test_one_shot_service_advance_is_400(self, plan):
        with start_local_service(ServiceConfig(plan=plan, n_shards=1)) as handle:
            self.upload(handle, plan, "r0", seed=0)
            status, _ = request(handle, "POST", "/v1/rounds/r0/advance")
            assert status == 400
            status, _ = request(handle, "GET", "/v1/stream/estimate")
            assert status == 400
