"""ShardedCollector: routing, backpressure, merge/estimate, observability."""

import threading

import numpy as np
import pytest

from repro.protocol.messages import FeedGroup
from repro.service import ServiceConfig, ServiceOverloadError, ShardedCollector
from repro.service.loadgen import synthesize_frames
from repro.tasks import (
    AnalysisPlan,
    AttributeSpec,
    Distribution,
    Mean,
    Quantiles,
)


def make_plan() -> AnalysisPlan:
    return AnalysisPlan(
        epsilon=2.0,
        attributes=(
            AttributeSpec("age", low=0.0, high=100.0, d=32),
            AttributeSpec("income", low=0.0, high=1e5, d=32),
        ),
        tasks=(
            Distribution("age"),
            Mean("income"),
            Quantiles("income", quantiles=(0.5,)),
        ),
    )


def feed_frames(plan, n_users=4000, round_id="r1", seed=7, batch=1000):
    return list(
        synthesize_frames(plan, round_id, n_users, batch_size=batch, rng=seed)
    )


class TestSubmitAndRoute:
    def test_accepts_frames_and_counts_reports(self):
        plan = make_plan()
        with ShardedCollector(ServiceConfig(plan=plan)) as collector:
            total = 0
            for frame, n in feed_frames(plan):
                assert collector.submit_feed(frame, "r1") == n
                total += n
            collector.flush()
            assert total == 4000
            ingested = sum(
                shard.stats()["reports_ingested"] for shard in collector.shards
            )
            assert ingested == total

    def test_jsonl_feed_accepted(self):
        plan = make_plan()
        from repro.tasks import Session

        session = Session(plan)
        reports = session.privatize(
            {
                "age": np.linspace(1.0, 99.0, 50),
                "income": np.linspace(100.0, 9e4, 50),
            },
            rng=np.random.default_rng(0),
        )
        feed = session.to_feed(reports, "r1", format="jsonl")
        with ShardedCollector(ServiceConfig(plan=plan)) as collector:
            assert collector.submit_feed(feed, "r1") == 50

    def test_round_mismatch_rejected(self):
        plan = make_plan()
        frame, _ = feed_frames(plan, n_users=100, batch=100)[0]
        with ShardedCollector(ServiceConfig(plan=plan)) as collector:
            with pytest.raises(ValueError, match="round"):
                collector.submit_feed(frame, "other-round")

    def test_undeclared_attribute_rejected(self):
        plan = make_plan()
        other = AnalysisPlan(
            epsilon=2.0,
            attributes=(AttributeSpec("height", low=0.0, high=2.5, d=32),),
            tasks=(Distribution("height"),),
        )
        frame, _ = feed_frames(other, n_users=100, batch=100)[0]
        with ShardedCollector(ServiceConfig(plan=plan)) as collector:
            with pytest.raises(ValueError, match="height"):
                collector.submit_feed(frame, "r1")

    def test_empty_feed_rejected(self):
        plan = make_plan()
        with ShardedCollector(ServiceConfig(plan=plan)) as collector:
            with pytest.raises(ValueError):
                collector.submit_feed(b"", "r1")


class TestBackpressure:
    def stalled_collector(self, plan, queue_depth):
        """A 1-shard collector whose worker is parked on a held lock."""
        collector = ShardedCollector(
            ServiceConfig(plan=plan, n_shards=1, queue_depth=queue_depth)
        )
        frame, _ = feed_frames(plan, n_users=20, batch=20)[0]
        collector.submit_feed(frame, "r1")
        collector.flush()
        # Grab every (round, attr) server lock: the worker will pop one
        # item off the queue and block inside ingest, freeing no slots.
        shard = collector.shards[0]
        locks = [server._lock for server in shard._servers.values()]
        for lock in locks:
            lock.acquire()
        return collector, locks

    def test_overflow_rejected_whole_and_drains_after(self):
        plan = make_plan()
        collector, locks = self.stalled_collector(plan, queue_depth=4)
        try:
            frames = feed_frames(plan, n_users=400, batch=50, seed=11)
            accepted = 0
            overloaded = False
            for frame, n in frames:
                try:
                    accepted += collector.submit_feed(frame, "r1")
                except ServiceOverloadError:
                    overloaded = True
                    break
            assert overloaded, "a depth-4 queue must reject an 8-frame burst"
            qsize_at_reject = collector.shards[0]._queue.qsize()
            # All-or-nothing: the rejected feed enqueued none of its blocks.
            with pytest.raises(ServiceOverloadError):
                collector.submit_feed(frames[-1][0], "r1")
            assert collector.shards[0]._queue.qsize() == qsize_at_reject
        finally:
            for lock in locks:
                lock.release()
        collector.flush()
        stats = collector.shards[0].stats()
        assert stats["reports_ingested"] == accepted + 20
        assert stats["ingest_errors"] == 0
        collector.close()

    def test_ingest_error_is_counted_not_fatal(self):
        plan = make_plan()
        with ShardedCollector(ServiceConfig(plan=plan, n_shards=1)) as collector:
            codec = collector._expected_codec["age"]
            bad = FeedGroup(
                attr="age",
                mechanism=codec.name,
                reports=np.array([1e9]),  # far outside any wave support
                n=1,
            )
            collector.shards[0].enqueue(bad, "r1")
            collector.flush()
            stats = collector.shards[0].stats()
            assert stats["ingest_errors"] == 1
            assert stats["last_error"] is not None
            # The worker survived: a good feed still lands.
            frame, n = feed_frames(plan, n_users=100, batch=100)[0]
            collector.submit_feed(frame, "r1")
            collector.flush()
            assert collector.shards[0].stats()["reports_ingested"] == n


class TestEstimate:
    def test_unknown_round_raises_lookup(self):
        plan = make_plan()
        with ShardedCollector(ServiceConfig(plan=plan)) as collector:
            with pytest.raises(LookupError, match="ever accepted"):
                collector.estimate("ghost")

    def test_full_round_produces_report(self):
        plan = make_plan()
        with ShardedCollector(ServiceConfig(plan=plan)) as collector:
            for frame, _ in feed_frames(plan):
                collector.submit_feed(frame, "r1")
            result = collector.estimate("r1")
            assert result["errors"] == {}
            assert set(result["estimates"]) == {"age", "income"}
            assert result["report"] is not None
            tasks = {r["task"] for r in result["report"]["results"]}
            assert tasks == {"distribution", "mean", "quantiles"}
            assert sum(result["n_reports"].values()) == 4000

    def test_missing_attribute_reports_structured_error(self):
        """One silent attribute must not hide the other's estimate."""
        plan = make_plan()
        with ShardedCollector(ServiceConfig(plan=plan)) as collector:
            # Only 'age' blocks: build single-attr frames by hand.
            from repro.tasks import Session

            session = Session(plan)
            reports = session.privatize(
                {
                    "age": np.linspace(1.0, 99.0, 200),
                    "income": np.linspace(1.0, 9e4, 200),
                },
                rng=np.random.default_rng(1),
            )
            feed = session.to_feed(
                {"age": reports["age"]}, "r1", format="frame"
            )
            collector.submit_feed(feed, "r1")
            result = collector.estimate("r1")
            assert result["estimates"]["age"] is not None
            assert result["estimates"]["income"] is None
            assert result["errors"]["income"]["type"] == "EmptyAggregateError"
            assert result["report"] is None

    def test_second_estimate_without_new_data_is_cached(self):
        plan = make_plan()
        with ShardedCollector(ServiceConfig(plan=plan)) as collector:
            for frame, _ in feed_frames(plan):
                collector.submit_feed(frame, "r1")
            first = collector.estimate("r1")
            merged_before = {
                attr: server
                for attr, server in collector._merged["r1"].items()
            }
            second = collector.estimate("r1")
            # The merge tier rebinds into the same persistent servers so
            # the posterior cache (and warm starts) survive re-merges.
            assert collector._merged["r1"] == merged_before
            assert first["estimates"] == second["estimates"]

    def test_estimate_then_more_data_changes_answer(self):
        plan = make_plan()
        with ShardedCollector(ServiceConfig(plan=plan)) as collector:
            frames = feed_frames(plan, n_users=2000, batch=500)
            for frame, _ in frames[:2]:
                collector.submit_feed(frame, "r1")
            first = collector.estimate("r1")
            for frame, _ in frames[2:]:
                collector.submit_feed(frame, "r1")
            second = collector.estimate("r1")
            assert sum(second["n_reports"].values()) == 2000
            assert second["n_reports"] != first["n_reports"]

    def test_rounds_are_independent(self):
        plan = make_plan()
        with ShardedCollector(ServiceConfig(plan=plan)) as collector:
            for frame, _ in feed_frames(plan, round_id="a", seed=1):
                collector.submit_feed(frame, "a")
            for frame, _ in feed_frames(plan, n_users=1000, round_id="b", seed=2):
                collector.submit_feed(frame, "b")
            a = collector.estimate("a")
            b = collector.estimate("b")
            assert sum(a["n_reports"].values()) == 4000
            assert sum(b["n_reports"].values()) == 1000
            assert collector.rounds() == ["a", "b"]


class TestShardedEquivalence:
    @pytest.mark.parametrize("n_shards", [2, 4])
    def test_sharded_result_bit_identical_to_single_shard(self, n_shards):
        """The acceptance contract: sharding is invisible in the answer."""
        plan = make_plan()
        frames = feed_frames(plan, n_users=3000, batch=500, seed=13)
        with (
            ShardedCollector(ServiceConfig(plan=plan, n_shards=1)) as single,
            ShardedCollector(ServiceConfig(plan=plan, n_shards=n_shards)) as multi,
        ):
            for frame, _ in frames:
                single.submit_feed(frame, "r1")
                multi.submit_feed(frame, "r1")
            a = single.estimate("r1")
            b = multi.estimate("r1")
            assert a["n_reports"] == b["n_reports"]
            for attr in ("age", "income"):
                assert a["estimates"][attr] == b["estimates"][attr]
            assert a["report"] == b["report"]

    def test_per_shard_backends_do_not_change_the_answer(self):
        plan = make_plan()
        frames = feed_frames(plan, n_users=1000, batch=250, seed=5)
        with (
            ShardedCollector(ServiceConfig(plan=plan, n_shards=2)) as plain,
            ShardedCollector(
                ServiceConfig(
                    plan=plan, n_shards=2, backends=("numpy", "threaded:2")
                )
            ) as mixed,
        ):
            for frame, _ in frames:
                plain.submit_feed(frame, "r1")
                mixed.submit_feed(frame, "r1")
            assert (
                plain.estimate("r1")["estimates"]
                == mixed.estimate("r1")["estimates"]
            )


class TestStats:
    def test_stats_shape(self):
        plan = make_plan()
        with ShardedCollector(ServiceConfig(plan=plan)) as collector:
            for frame, _ in feed_frames(plan, n_users=1000, batch=250):
                collector.submit_feed(frame, "r1")
            collector.estimate("r1")
            stats = collector.stats()
            assert stats["n_shards"] == 2
            assert stats["rounds"] == ["r1"]
            assert stats["merges"] == 1
            assert stats["merge_ms_last"] is not None
            per_shard = stats["shards"]
            assert [s["shard"] for s in per_shard] == [0, 1]
            assert sum(s["reports_ingested"] for s in per_shard) == 1000
            assert all(s["queue_depth"] == 0 for s in per_shard)

    def test_closed_collector_rejects_submissions(self):
        plan = make_plan()
        collector = ShardedCollector(ServiceConfig(plan=plan))
        collector.close()
        frame, _ = feed_frames(plan, n_users=100, batch=100)[0]
        with pytest.raises(RuntimeError, match="closed"):
            collector.submit_feed(frame, "r1")


class TestBoundedMemoryMillionReports:
    def test_million_reports_bounded_ingest_memory_and_equivalence(self):
        """Acceptance: >=1M reports stream through a sharded collector with
        ingest-tier memory bounded far below the total feed volume, and the
        merged answer is bit-identical to a single-shard ingest."""
        import tracemalloc

        plan = make_plan()
        n_users, batch = 1_000_000, 50_000
        with (
            ShardedCollector(
                ServiceConfig(plan=plan, n_shards=1, queue_depth=8)
            ) as single,
            ShardedCollector(
                ServiceConfig(plan=plan, n_shards=4, queue_depth=8)
            ) as multi,
        ):
            total_feed_bytes = 0
            tracemalloc.start()
            tracemalloc.reset_peak()
            for frame, _ in synthesize_frames(
                plan, "r1", n_users, batch_size=batch, rng=42
            ):
                total_feed_bytes += len(frame)
                # Bounded queues mean a submit can hit backpressure; the
                # deployment answer (retry) keeps the feed exact.
                for collector in (single, multi):
                    while True:
                        try:
                            collector.submit_feed(frame, "r1")
                            break
                        except Exception as exc:  # ServiceOverloadError
                            if "queue" not in str(exc):
                                raise
                            collector.flush()
            single.flush()
            multi.flush()
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert total_feed_bytes > 4_000_000
            # The whole feed never materializes: a buffering ingest would
            # hold one full decoded copy per collector (>= 2x the feed
            # volume) before solving; the streaming path's peak across BOTH
            # collectors stays below a single copy.
            assert peak < total_feed_bytes
            a = single.estimate("r1")
            b = multi.estimate("r1")
            assert sum(a["n_reports"].values()) == n_users
            assert a["n_reports"] == b["n_reports"]
            assert a["estimates"] == b["estimates"]


class TestConcurrentSubmitters:
    def test_serialized_submissions_from_many_threads(self):
        """submit_feed is used single-threaded by the HTTP tier, but a lock
        -free caller race must still never corrupt counts once the test
        serializes externally."""
        plan = make_plan()
        frames = feed_frames(plan, n_users=2000, batch=100, seed=9)
        lock = threading.Lock()
        errors: list[Exception] = []
        with ShardedCollector(
            ServiceConfig(plan=plan, queue_depth=256)
        ) as collector:
            def upload(chunk):
                try:
                    for frame, _ in chunk:
                        with lock:
                            collector.submit_feed(frame, "r1")
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [
                threading.Thread(target=upload, args=(frames[i::4],))
                for i in range(4)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            collector.flush()
            assert errors == []
            assert sum(collector.estimate("r1")["n_reports"].values()) == 2000
