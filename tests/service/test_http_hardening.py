"""Hardening regressions: slow-loris, oversized headers, idempotent retries.

Real sockets against a local service, same harness shape as
``test_http.py`` — but these clients misbehave on purpose: they stall
mid-request, send absurd headers, replay uploads, and drop connections,
and the service must degrade per-connection (408/431, replay acks)
without stalling the well-behaved peers sharing the listener.
"""

import asyncio
import json
import time

import numpy as np
import pytest

from repro.service import ServiceConfig, start_local_service
from repro.service.loadgen import http_request, synthesize_frames
from repro.tasks import AnalysisPlan, AttributeSpec, Distribution, Mean


@pytest.fixture(scope="module")
def plan() -> AnalysisPlan:
    return AnalysisPlan(
        epsilon=2.0,
        attributes=(
            AttributeSpec("age", low=0.0, high=100.0, d=16),
            AttributeSpec("income", low=0.0, high=1e5, d=16),
        ),
        tasks=(Distribution("age"), Mean("income")),
    )


@pytest.fixture()
def strict_service(plan):
    config = ServiceConfig(
        plan=plan,
        n_shards=2,
        read_timeout=0.3,
        max_header_bytes=2048,
    )
    with start_local_service(config) as handle:
        yield handle


def one_frame(plan, round_id="r1", n_users=300, seed=5):
    [(frame, n)] = list(
        synthesize_frames(plan, round_id, n_users, batch_size=n_users, rng=seed)
    )
    return frame, n


async def raw_exchange(host, port, payload: bytes, *, read_timeout=5.0):
    """Send raw bytes, return the status line (or b'' if the peer closed)."""
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(payload)
        await writer.drain()
        return await asyncio.wait_for(reader.readline(), timeout=read_timeout)
    finally:
        writer.close()


class TestSlowLoris:
    def test_stalled_request_gets_408_and_close(self, strict_service):
        async def go():
            reader, writer = await asyncio.open_connection(
                strict_service.host, strict_service.port
            )
            try:
                writer.write(b"POST /v1/rounds/r1/reports HTTP/1.1\r\n")
                await writer.drain()
                # ... and then never finish the headers.
                status = await asyncio.wait_for(reader.readline(), timeout=5.0)
                head = await asyncio.wait_for(
                    reader.readuntil(b"\r\n\r\n"), timeout=5.0
                )
                return status, head
            finally:
                writer.close()

        status, head = asyncio.run(go())
        assert b"408" in status
        assert b"connection: close" in head.lower()

    def test_loris_does_not_stall_healthy_peers(self, strict_service, plan):
        frame, n = one_frame(plan)

        async def go():
            # Park a handful of stalled connections on the listener.
            loris = [
                await asyncio.open_connection(
                    strict_service.host, strict_service.port
                )
                for _ in range(8)
            ]
            for _reader, writer in loris:
                writer.write(b"POST /v1/rounds/r1/reports HTTP/1.1\r\n")
                await writer.drain()
            try:
                started = time.perf_counter()
                status, payload, _reader, writer = await http_request(
                    strict_service.host,
                    strict_service.port,
                    "POST",
                    "/v1/rounds/r1/reports",
                    body=frame,
                )
                elapsed = time.perf_counter() - started
                writer.close()
                return status, json.loads(payload), elapsed
            finally:
                for _reader, writer in loris:
                    writer.close()

        status, payload, elapsed = asyncio.run(go())
        assert status == 202
        assert payload["accepted"] == n
        # The healthy upload must not have waited out the 0.3s loris timeout.
        assert elapsed < 0.3


class TestHeaderGuards:
    def test_oversized_header_block_gets_431(self, strict_service):
        huge = b"X-Filler: " + b"a" * 8192 + b"\r\n"
        head = (
            b"GET /healthz HTTP/1.1\r\n"
            b"Host: t\r\n" + huge + b"Content-Length: 0\r\n\r\n"
        )
        status = asyncio.run(
            raw_exchange(strict_service.host, strict_service.port, head)
        )
        assert b"431" in status

    def test_normal_headers_unaffected(self, strict_service):
        status = asyncio.run(
            raw_exchange(
                strict_service.host,
                strict_service.port,
                b"GET /healthz HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
            )
        )
        assert b"200" in status


class TestIdempotentRetries:
    def test_duplicate_upload_is_replay_acked_not_reingested(
        self, strict_service, plan
    ):
        frame, n = one_frame(plan)

        async def send(key):
            response_headers = {}
            status, payload, _reader, writer = await http_request(
                strict_service.host,
                strict_service.port,
                "POST",
                "/v1/rounds/r1/reports",
                body=frame,
                headers={"Idempotency-Key": key},
                response_headers=response_headers,
            )
            writer.close()
            return status, json.loads(payload)

        status, payload = asyncio.run(send("upload-1"))
        assert status == 202 and payload["accepted"] == n
        for _ in range(3):  # paranoid client retries the same upload
            status, payload = asyncio.run(send("upload-1"))
            assert status == 200  # replay ack
            assert payload["accepted"] == n
            assert payload["replayed"] is True
        strict_service.collector.flush()
        ingested = sum(
            shard.stats()["reports_ingested"]
            for shard in strict_service.collector.shards
        )
        assert ingested == n

    def test_same_key_different_payload_conflicts(self, strict_service, plan):
        frame_a, _ = one_frame(plan, seed=5)
        frame_b, _ = one_frame(plan, seed=6)

        async def send(body):
            status, payload, _reader, writer = await http_request(
                strict_service.host,
                strict_service.port,
                "POST",
                "/v1/rounds/r1/reports",
                body=body,
                headers={"Idempotency-Key": "clash"},
            )
            writer.close()
            return status, json.loads(payload)

        status, _ = asyncio.run(send(frame_a))
        assert status == 202
        status, payload = asyncio.run(send(frame_b))
        assert status == 409
        assert "error" in payload

    def test_unkeyed_duplicates_dedup_by_content_digest(
        self, strict_service, plan
    ):
        frame, n = one_frame(plan, round_id="r2", seed=9)

        async def send():
            status, payload, _reader, writer = await http_request(
                strict_service.host,
                strict_service.port,
                "POST",
                "/v1/rounds/r2/reports",
                body=frame,
            )
            writer.close()
            return status, json.loads(payload)

        first, payload = asyncio.run(send())
        assert first == 202 and payload["accepted"] == n
        second, payload = asyncio.run(send())
        assert second == 200 and payload["replayed"] is True
        strict_service.collector.flush()
        estimates = strict_service.collector.estimate("r2")
        seen = {
            attr: cov["n_reports_seen"]
            for attr, cov in estimates["coverage"].items()
        }
        # Each user reports on one sampled attribute; the duplicate must
        # not have doubled anything.
        assert sum(seen.values()) == n
